#include "baselines/eager.hpp"

#include <functional>

#include "exec/plan.hpp"
#include "tensor/workspace.hpp"

namespace cortex::baselines {

namespace {
constexpr std::int64_t kF = sizeof(float);
}

EagerEngine::EagerEngine(const models::ModelDef& def,
                         const models::ModelParams& params,
                         runtime::DeviceSpec spec, EagerConfig config)
    : def_(def), params_(params), spec_(std::move(spec)), config_(config) {
  def_.cell.validate();
}

runtime::RunResult EagerEngine::run(
    const std::vector<const ds::Tree*>& trees) {
  // Numerics are shared across frameworks; this run models PyTorch's
  // execution behaviour on top of them.
  SharedStates ss = compute_states(def_, params_, trees);

  runtime::Device device(spec_);
  Workspace ws;
  const auto widths = def_.cell.register_widths();
  const auto pbytes = exec::model_param_bytes(def_);
  const std::int64_t nc = def_.cell.num_children;
  const std::int64_t sw = def_.cell.state_width;

  std::int64_t tmp_width = 0;
  for (const auto& [reg, w] : widths) tmp_width += w;

  // Eager evaluation: one kernel per operator per node; child states are
  // released once the parent has consumed them (refcounting), so only the
  // recursion frontier stays allocated.
  std::function<std::int64_t(const ds::TreeNode*)> visit =
      [&](const ds::TreeNode* node) -> std::int64_t {
    std::vector<std::int64_t> child_tickets;
    if (!node->is_leaf()) {
      child_tickets.push_back(visit(node->left));
      child_tickets.push_back(visit(node->right));
    }
    const auto& ops = (node->is_leaf() && !def_.cell.leaf_ops.empty())
                          ? def_.cell.leaf_ops
                          : def_.cell.internal_ops;
    const std::int64_t tmp = ws.allocate(tmp_width * kF);
    for (const models::CellOp& op : ops) {
      const exec::KernelTemplate t =
          exec::op_template(op, widths, pbytes, nc, "eager/");
      runtime::KernelDesc k;
      k.flops = t.flops_per_node;
      k.bytes_read = t.bytes_read_per_node;
      k.bytes_weights = t.weight_bytes;
      k.bytes_written = t.bytes_written_per_node;
      k.parallelism = t.width;
      device.launch(k);
      device.profiler().host_other_ns += config_.dispatch_ns;
    }
    ws.release(tmp);
    const std::int64_t state_ticket = ws.allocate(sw * kF);
    for (const std::int64_t ct : child_tickets) ws.release(ct);
    return state_ticket;
  };

  std::vector<std::int64_t> root_tickets;
  for (const ds::Tree* t : trees) root_tickets.push_back(visit(t->root()));
  for (const std::int64_t rt : root_tickets) ws.release(rt);

  runtime::RunResult rr;
  rr.root_states = std::move(ss.root_states);
  rr.profiler = device.profiler();
  rr.peak_memory_bytes = ws.peak_bytes();
  return rr;
}

runtime::RunResult EagerEngine::run(const std::vector<const ds::Dag*>& dags) {
  SharedStates ss = compute_states(def_, params_, dags);

  runtime::Device device(spec_);
  Workspace ws;
  const auto widths = def_.cell.register_widths();
  const auto pbytes = exec::model_param_bytes(def_);
  const std::int64_t sw = def_.cell.state_width;
  std::int64_t tmp_width = 0;
  for (const auto& [reg, w] : widths) tmp_width += w;

  // Eager DAG execution keeps every node state live (the user's own dict
  // of node -> tensor), processing nodes in topological order.
  for (const ds::Dag* dag : dags) {
    for (std::int64_t v = 0; v < dag->num_nodes(); ++v) {
      const std::int64_t fanin =
          static_cast<std::int64_t>(dag->preds(v).size());
      const std::int64_t tmp = ws.allocate(tmp_width * kF);
      for (const models::CellOp& op : def_.cell.internal_ops) {
        const exec::KernelTemplate t =
            exec::op_template(op, widths, pbytes, std::max<std::int64_t>(
                                                      fanin, 1),
                              "eager/");
        runtime::KernelDesc k;
        k.flops = t.flops_per_node;
        k.bytes_read = t.bytes_read_per_node;
        k.bytes_weights = t.weight_bytes;
        k.bytes_written = t.bytes_written_per_node;
        k.parallelism = t.width;
        device.launch(k);
        device.profiler().host_other_ns += config_.dispatch_ns;
      }
      ws.release(tmp);
      ws.allocate(sw * kF);  // node state, live until the run ends
    }
  }

  runtime::RunResult rr;
  rr.root_states = std::move(ss.root_states);
  rr.profiler = device.profiler();
  rr.peak_memory_bytes = ws.peak_bytes();
  return rr;
}

}  // namespace cortex::baselines
