#pragma once
// Activation functions. The paper (§A.5) uses rational approximations of
// tanh and sigmoid so CPU SIMD units can be exploited; we provide both the
// exact libm versions (reference) and the rational approximations that
// Cortex-generated code uses. All frameworks in the evaluation are
// configured with the same variant so outputs stay bit-comparable.

#include <cstdint>

namespace cortex::kernels {

/// Exact tanh via libm.
float tanh_exact(float x);
/// Exact logistic sigmoid via libm.
float sigmoid_exact(float x);

/// Rational (Padé-style) approximation of tanh; max abs error ~3e-5 on
/// [-5,5], clamped to ±1 outside.
float tanh_rational(float x);
/// Sigmoid derived from tanh_rational: 0.5 * (1 + tanh(x/2)).
float sigmoid_rational(float x);

/// out[i] = tanh(a[i]) using the rational approximation.
void tanh_vec(const float* a, float* out, std::int64_t n);
/// out[i] = sigmoid(a[i]) using the rational approximation.
void sigmoid_vec(const float* a, float* out, std::int64_t n);
/// out[i] = max(a[i], 0).
void relu_vec(const float* a, float* out, std::int64_t n);

/// Enumeration of pointwise activations used by model definitions and IRs.
enum class Activation { kTanh, kSigmoid, kRelu, kIdentity };

/// Scalar application of an Activation (rational variants).
float apply_activation(Activation act, float x);
/// Vector application of an Activation (rational variants).
void apply_activation_vec(Activation act, const float* a, float* out,
                          std::int64_t n);

/// Printable name ("tanh", "sigmoid", ...).
const char* activation_name(Activation act);

}  // namespace cortex::kernels
