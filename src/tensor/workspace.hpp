#pragma once
// Workspace: a bump allocator with live-bytes accounting that models a
// framework's device ("GPU global") memory pool. Fig. 12 of the paper
// compares peak memory across frameworks; each framework here routes its
// intermediate-tensor allocations through a Workspace so peak usage is a
// measured quantity, not an estimate.

#include <cstdint>
#include <string>
#include <vector>

namespace cortex {

/// Tracks live and peak bytes for a framework's device memory pool.
///
/// Frameworks that keep all intermediates alive (DyNet/Cavs training-style
/// allocation) simply never call release(); inference-style frameworks
/// release tensors as their last consumer finishes.
class Workspace {
 public:
  /// Records an allocation of `bytes`; returns an opaque ticket id.
  std::int64_t allocate(std::int64_t bytes);

  /// Records that the allocation behind `ticket` was freed.
  void release(std::int64_t ticket);

  /// Live bytes right now.
  std::int64_t live_bytes() const { return live_bytes_; }
  /// High-water mark of live bytes since construction / last reset.
  std::int64_t peak_bytes() const { return peak_bytes_; }
  /// Total bytes ever allocated (lifetime sum).
  std::int64_t total_allocated() const { return total_allocated_; }
  /// Number of allocate() calls.
  std::int64_t num_allocations() const { return num_allocations_; }

  void reset();

  std::string summary() const;

 private:
  struct Allocation {
    std::int64_t bytes = 0;
    bool live = false;
  };
  std::vector<Allocation> allocations_;
  std::int64_t live_bytes_ = 0;
  std::int64_t peak_bytes_ = 0;
  std::int64_t total_allocated_ = 0;
  std::int64_t num_allocations_ = 0;
};

}  // namespace cortex
