#pragma once
// Kernel library: the "vendor BLAS" substitute every framework in this repo
// calls into (see DESIGN.md §2). Raw-pointer kernels operate on contiguous
// row-major buffers; Tensor-typed wrappers add shape checking.
//
// Two GEMM variants are provided: a naive reference (tests) and a
// cache-blocked version (everything else).

#include <cstdint>

#include "tensor/tensor.hpp"

namespace cortex::kernels {

// ---------------------------------------------------------------------------
// Raw-pointer kernels (hot paths).
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n]. Naive triple loop; reference implementation.
void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n);

/// C[m,n] = A[m,k] * B[k,n]. Cache-blocked with unrolled inner loop.
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C[m,n] += A[m,k] * B[k,n].
void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n);

/// y[m] = A[m,k] * x[k].
void gemv(const float* a, const float* x, float* y, std::int64_t m,
          std::int64_t k);

/// y[m] += A[m,k] * x[k].
void gemv_acc(const float* a, const float* x, float* y, std::int64_t m,
              std::int64_t k);

/// out[i] = a[i] + b[i].
void add(const float* a, const float* b, float* out, std::int64_t n);
/// out[i] = a[i] - b[i].
void sub(const float* a, const float* b, float* out, std::int64_t n);
/// out[i] = a[i] * b[i].
void mul(const float* a, const float* b, float* out, std::int64_t n);
/// out[i] += a[i] * b[i].
void mul_acc(const float* a, const float* b, float* out, std::int64_t n);
/// out[i] = a[i] + s.
void add_scalar(const float* a, float s, float* out, std::int64_t n);
/// out[i] = a[i] * s.
void scale(const float* a, float s, float* out, std::int64_t n);
/// out[i] = v.
void fill(float* out, float v, std::int64_t n);
/// out[i] = a[i].
void copy(const float* a, float* out, std::int64_t n);
/// acc[i] += a[i].
void acc(const float* a, float* accum, std::int64_t n);

/// Concatenate two length-n vectors into out[0:2n].
void concat2(const float* a, const float* b, float* out, std::int64_t n);

/// Gather rows: out[r,:] = table[idx[r],:] for r in [0,rows).
void gather_rows(const float* table, const std::int32_t* idx, float* out,
                 std::int64_t rows, std::int64_t width);

/// Strided gather: out[r,:] = table[idx[r]*stride : idx[r]*stride+width].
/// `stride` is the row stride of `table` in floats — gather_rows is the
/// stride == width case. The batched wavefront executor uses this to pull
/// a column slice (e.g. the h half of an [h; c] state) of many child
/// rows into one contiguous panel.
void gather_rows_strided(const float* table, std::int64_t stride,
                         const std::int32_t* idx, float* out,
                         std::int64_t rows, std::int64_t width);

/// out[k,m] = a^T for row-major a[m,k]. Used once at executor build time
/// to lay weights out so panel GEMMs (C = In @ W^T) keep B unit-stride.
void transpose(const float* a, float* out, std::int64_t m, std::int64_t k);

/// Scatter rows: table[idx[r],:] = in[r,:] for r in [0,rows).
void scatter_rows(float* table, const std::int32_t* idx, const float* in,
                  std::int64_t rows, std::int64_t width);

// ---------------------------------------------------------------------------
// Tensor-typed wrappers (shape-checked; examples/tests/baselines).
// ---------------------------------------------------------------------------

/// C = A @ B for 2-D tensors.
Tensor matmul(const Tensor& a, const Tensor& b);
/// Row-wise A @ B^T convenience: out[r,:] = W @ in[r,:] for each row r.
/// in: (rows, k), w: (m, k) -> out: (rows, m).
Tensor linear(const Tensor& in, const Tensor& w);
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
/// Broadcasting add of a rank-1 bias over the last dimension.
Tensor add_bias(const Tensor& a, const Tensor& bias);
/// Concatenation along the last dimension of two equal-leading tensors.
Tensor concat_last(const Tensor& a, const Tensor& b);

/// Count of floating-point operations for a GEMM of these dimensions.
inline std::int64_t gemm_flops(std::int64_t m, std::int64_t k,
                               std::int64_t n) {
  return 2 * m * k * n;
}

}  // namespace cortex::kernels
