#pragma once
// Dense row-major float tensor used by every framework in this repo
// (Cortex-compiled code and all baselines), mirroring how the paper's
// evaluation ran every framework on the same vendor BLAS substrate.

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace cortex {

/// Shape of a dense tensor. Rank is small (<= 4 in practice).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const {
    CORTEX_CHECK(i < dims_.size()) << "dim index " << i << " out of rank "
                                   << dims_.size();
    return dims_[i];
  }
  std::int64_t operator[](std::size_t i) const { return dim(i); }

  /// Total number of elements.
  std::int64_t numel() const {
    std::int64_t n = 1;
    for (auto d : dims_) n *= d;
    return n;
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string str() const;

 private:
  void validate() const {
    for (auto d : dims_)
      CORTEX_CHECK(d >= 0) << "negative dimension in shape " << str();
  }
  std::vector<std::int64_t> dims_;
};

/// Dense, contiguous, row-major float32 tensor with shared ownership.
///
/// Copying a Tensor is cheap (shares the buffer); use clone() for a deep
/// copy. All kernels in kernels.hpp operate on these.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates an uninitialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and zero-fills.
  static Tensor zeros(Shape shape);
  /// Allocates and fills with a constant.
  static Tensor full(Shape shape, float value);
  /// Allocates and fills uniformly in [lo, hi) from the given RNG.
  static Tensor uniform(Shape shape, Rng& rng, float lo = -0.1f,
                        float hi = 0.1f);
  /// Wraps an existing vector (copies it).
  static Tensor from_vector(Shape shape, const std::vector<float>& values);
  /// Aliasing view into `storage` at `offset_elems` floats from its base
  /// (no copy, no fill). The view keeps the whole storage alive — this is
  /// how arena-planned buffers bind to their slot offsets. The caller
  /// guarantees the range [offset, offset + shape.numel()) is in bounds.
  static Tensor view_into(Shape shape, const std::shared_ptr<float[]>& storage,
                          std::int64_t offset_elems);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  bool defined() const { return static_cast<bool>(data_); }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  /// Element access for 1-D and 2-D tensors (tests / small utilities only;
  /// hot paths index raw data()).
  float& at(std::int64_t i);
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i) const;
  float at(std::int64_t i, std::int64_t j) const;

  /// Deep copy.
  Tensor clone() const;

  /// Zero-fills in place.
  void zero();

  /// Row pointer for a 2-D (or higher, flattened-leading) tensor.
  float* row(std::int64_t r) {
    return data() + r * row_stride();
  }
  const float* row(std::int64_t r) const { return data() + r * row_stride(); }

  /// Elements per leading-dimension row (product of trailing dims).
  std::int64_t row_stride() const {
    CORTEX_CHECK(shape_.rank() >= 1) << "row() on rank-0 tensor";
    return shape_.numel() / (shape_.dim(0) == 0 ? 1 : shape_.dim(0));
  }

  std::string str(std::int64_t max_elems = 16) const;

 private:
  Shape shape_;
  std::shared_ptr<float[]> data_;
};

/// Max |a-b| over two equal-shaped tensors; used by equivalence tests.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// True when max_abs_diff(a,b) <= atol + rtol * max|b|.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-4f,
              float rtol = 1e-4f);

}  // namespace cortex
