#include "tensor/activations.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace cortex::kernels {

float tanh_exact(float x) { return std::tanh(x); }

float sigmoid_exact(float x) { return 1.0f / (1.0f + std::exp(-x)); }

float tanh_rational(float x) {
  // Lambert-style continued-fraction expansion truncated at x^7 over x^6;
  // accurate to ~3e-5 on [-5, 5]. Outside that, tanh saturates.
  if (x > 5.0f) return 1.0f;
  if (x < -5.0f) return -1.0f;
  const float x2 = x * x;
  const float num = x * (135135.0f + x2 * (17325.0f + x2 * (378.0f + x2)));
  const float den =
      135135.0f + x2 * (62370.0f + x2 * (3150.0f + x2 * 28.0f));
  return num / den;
}

float sigmoid_rational(float x) {
  return 0.5f * (1.0f + tanh_rational(0.5f * x));
}

void tanh_vec(const float* a, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = tanh_rational(a[i]);
}

void sigmoid_vec(const float* a, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = sigmoid_rational(a[i]);
}

void relu_vec(const float* a, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

float apply_activation(Activation act, float x) {
  switch (act) {
    case Activation::kTanh:
      return tanh_rational(x);
    case Activation::kSigmoid:
      return sigmoid_rational(x);
    case Activation::kRelu:
      return x > 0.0f ? x : 0.0f;
    case Activation::kIdentity:
      return x;
  }
  CORTEX_CHECK(false) << "unknown activation";
  return 0.0f;
}

void apply_activation_vec(Activation act, const float* a, float* out,
                          std::int64_t n) {
  switch (act) {
    case Activation::kTanh:
      tanh_vec(a, out, n);
      return;
    case Activation::kSigmoid:
      sigmoid_vec(a, out, n);
      return;
    case Activation::kRelu:
      relu_vec(a, out, n);
      return;
    case Activation::kIdentity:
      std::copy(a, a + n, out);
      return;
  }
  CORTEX_CHECK(false) << "unknown activation";
}

const char* activation_name(Activation act) {
  switch (act) {
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kRelu:
      return "relu";
    case Activation::kIdentity:
      return "identity";
  }
  return "?";
}

}  // namespace cortex::kernels
