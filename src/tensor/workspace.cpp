#include "tensor/workspace.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/logging.hpp"

namespace cortex {

std::int64_t Workspace::allocate(std::int64_t bytes) {
  CORTEX_CHECK(bytes >= 0) << "negative allocation";
  allocations_.push_back({bytes, true});
  live_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  total_allocated_ += bytes;
  ++num_allocations_;
  return static_cast<std::int64_t>(allocations_.size()) - 1;
}

void Workspace::release(std::int64_t ticket) {
  CORTEX_CHECK(ticket >= 0 &&
               ticket < static_cast<std::int64_t>(allocations_.size()))
      << "bad workspace ticket " << ticket;
  Allocation& a = allocations_[static_cast<std::size_t>(ticket)];
  CORTEX_CHECK(a.live) << "double release of workspace ticket " << ticket;
  a.live = false;
  live_bytes_ -= a.bytes;
}

void Workspace::reset() {
  allocations_.clear();
  live_bytes_ = peak_bytes_ = total_allocated_ = num_allocations_ = 0;
}

std::string Workspace::summary() const {
  std::ostringstream os;
  os << "live=" << live_bytes_ << "B peak=" << peak_bytes_
     << "B total=" << total_allocated_ << "B allocs=" << num_allocations_;
  return os.str();
}

}  // namespace cortex
