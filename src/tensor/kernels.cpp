#include "tensor/kernels.hpp"

#include <algorithm>
#include <cstring>

namespace cortex::kernels {

void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) s += a[i * k + p] * b[p * n + j];
      c[i * n + j] = s;
    }
}

namespace {

// i-k-j loop order keeps B and C accesses unit-stride, which the compiler
// auto-vectorizes; blocking on k keeps the B panel in L1/L2. The i loop is
// register-tiled 4 rows at a time so each B row pulled from cache is used
// four times, and the __restrict qualifiers let the unit-stride j loops
// vectorize without runtime alias checks.
//
// Numerics contract: for every output element, the k accumulation is a
// single chain of multiply-adds in ascending p order — exactly gemv's
// order — so a GEMM over a [rows, k] panel is bit-identical to rows
// independent GEMVs. The batched wavefront executor relies on this.
constexpr std::int64_t kBlockK = 64;
constexpr std::int64_t kTileM = 4;

void gemm_impl(const float* __restrict a, const float* __restrict b,
               float* __restrict c, std::int64_t m, std::int64_t k,
               std::int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * m * n);
  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t p1 = std::min(p0 + kBlockK, k);
    std::int64_t i = 0;
    for (; i + kTileM <= m; i += kTileM) {
      float* __restrict c0 = c + (i + 0) * n;
      float* __restrict c1 = c + (i + 1) * n;
      float* __restrict c2 = c + (i + 2) * n;
      float* __restrict c3 = c + (i + 3) * n;
      for (std::int64_t p = p0; p < p1; ++p) {
        const float a0 = a[(i + 0) * k + p];
        const float a1 = a[(i + 1) * k + p];
        const float a2 = a[(i + 2) * k + p];
        const float a3 = a[(i + 3) * k + p];
        const float* __restrict brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) {
          c0[j] += a0 * brow[j];
          c1[j] += a1 * brow[j];
          c2[j] += a2 * brow[j];
          c3[j] += a3 * brow[j];
        }
      }
    }
    for (; i < m; ++i) {
      float* __restrict crow = c + i * n;
      for (std::int64_t p = p0; p < p1; ++p) {
        const float av = a[i * k + p];
        const float* __restrict brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  gemm_impl(a, b, c, m, k, n, /*accumulate=*/false);
}

void gemm_acc(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n) {
  gemm_impl(a, b, c, m, k, n, /*accumulate=*/true);
}

void gemv(const float* a, const float* x, float* y, std::int64_t m,
          std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float s = 0.0f;
    for (std::int64_t p = 0; p < k; ++p) s += arow[p] * x[p];
    y[i] = s;
  }
}

void gemv_acc(const float* a, const float* x, float* y, std::int64_t m,
              std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float s = 0.0f;
    for (std::int64_t p = 0; p < k; ++p) s += arow[p] * x[p];
    y[i] += s;
  }
}

void add(const float* a, const float* b, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void sub(const float* a, const float* b, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void mul(const float* a, const float* b, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void mul_acc(const float* a, const float* b, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] += a[i] * b[i];
}

void add_scalar(const float* a, float s, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] + s;
}

void scale(const float* a, float s, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void fill(float* out, float v, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = v;
}

void copy(const float* a, float* out, std::int64_t n) {
  std::memcpy(out, a, sizeof(float) * n);
}

void acc(const float* a, float* accum, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) accum[i] += a[i];
}

void concat2(const float* a, const float* b, float* out, std::int64_t n) {
  std::memcpy(out, a, sizeof(float) * n);
  std::memcpy(out + n, b, sizeof(float) * n);
}

void gather_rows(const float* table, const std::int32_t* idx, float* out,
                 std::int64_t rows, std::int64_t width) {
  gather_rows_strided(table, width, idx, out, rows, width);
}

void gather_rows_strided(const float* table, std::int64_t stride,
                         const std::int32_t* idx, float* out,
                         std::int64_t rows, std::int64_t width) {
  for (std::int64_t r = 0; r < rows; ++r)
    std::memcpy(out + r * width, table + idx[r] * stride,
                sizeof(float) * width);
}

void transpose(const float* a, float* out, std::int64_t m, std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p) out[p * m + i] = a[i * k + p];
}

void scatter_rows(float* table, const std::int32_t* idx, const float* in,
                  std::int64_t rows, std::int64_t width) {
  for (std::int64_t r = 0; r < rows; ++r)
    std::memcpy(table + idx[r] * width, in + r * width,
                sizeof(float) * width);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CORTEX_CHECK(a.shape().rank() == 2 && b.shape().rank() == 2 &&
               a.shape().dim(1) == b.shape().dim(0))
      << "matmul shapes " << a.shape().str() << " x " << b.shape().str();
  Tensor c({a.shape().dim(0), b.shape().dim(1)});
  gemm(a.data(), b.data(), c.data(), a.shape().dim(0), a.shape().dim(1),
       b.shape().dim(1));
  return c;
}

Tensor linear(const Tensor& in, const Tensor& w) {
  CORTEX_CHECK(in.shape().rank() == 2 && w.shape().rank() == 2 &&
               in.shape().dim(1) == w.shape().dim(1))
      << "linear shapes " << in.shape().str() << " with W "
      << w.shape().str();
  const std::int64_t rows = in.shape().dim(0);
  const std::int64_t k = in.shape().dim(1);
  const std::int64_t m = w.shape().dim(0);
  Tensor out({rows, m});
  // out = in @ W^T; implemented row-by-row as GEMV to match how the
  // frameworks dispatch per-node work.
  for (std::int64_t r = 0; r < rows; ++r)
    gemv(w.data(), in.row(r), out.row(r), m, k);
  return out;
}

namespace {
Tensor binary_elementwise(const Tensor& a, const Tensor& b,
                          void (*f)(const float*, const float*, float*,
                                    std::int64_t)) {
  CORTEX_CHECK(a.shape() == b.shape())
      << "elementwise shapes " << a.shape().str() << " vs "
      << b.shape().str();
  Tensor out(a.shape());
  f(a.data(), b.data(), out.data(), a.numel());
  return out;
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_elementwise(a, b, &add);
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_elementwise(a, b, &sub);
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_elementwise(a, b, &mul);
}

Tensor add_bias(const Tensor& a, const Tensor& bias) {
  CORTEX_CHECK(bias.shape().rank() == 1 && a.shape().rank() >= 1 &&
               a.shape().dim(a.shape().rank() - 1) == bias.shape().dim(0))
      << "add_bias shapes " << a.shape().str() << " + " << bias.shape().str();
  Tensor out(a.shape());
  const std::int64_t w = bias.shape().dim(0);
  const std::int64_t rows = a.numel() / w;
  for (std::int64_t r = 0; r < rows; ++r)
    add(a.data() + r * w, bias.data(), out.data() + r * w, w);
  return out;
}

Tensor concat_last(const Tensor& a, const Tensor& b) {
  CORTEX_CHECK(a.shape().rank() == b.shape().rank() && a.shape().rank() >= 1)
      << "concat_last ranks";
  const std::size_t rk = a.shape().rank();
  for (std::size_t i = 0; i + 1 < rk; ++i)
    CORTEX_CHECK(a.shape().dim(i) == b.shape().dim(i))
        << "concat_last leading dims " << a.shape().str() << " vs "
        << b.shape().str();
  std::vector<std::int64_t> dims = a.shape().dims();
  const std::int64_t wa = a.shape().dim(rk - 1);
  const std::int64_t wb = b.shape().dim(rk - 1);
  dims[rk - 1] = wa + wb;
  Tensor out{Shape(dims)};
  const std::int64_t rows = a.numel() / (wa == 0 ? 1 : wa);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::memcpy(out.data() + r * (wa + wb), a.data() + r * wa,
                sizeof(float) * wa);
    std::memcpy(out.data() + r * (wa + wb) + wa, b.data() + r * wb,
                sizeof(float) * wb);
  }
  return out;
}

}  // namespace cortex::kernels
