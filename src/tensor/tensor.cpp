#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace cortex {

std::string Shape::str() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ",";
    os << dims_[i];
  }
  os << ")";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  const auto n = static_cast<std::size_t>(shape_.numel());
  data_ = std::shared_ptr<float[]>(new float[std::max<std::size_t>(n, 1)]);
}

Tensor Tensor::zeros(Shape shape) {
  Tensor t(std::move(shape));
  t.zero();
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill_n(t.data(), t.numel(), value);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  rng.fill_uniform(t.data(), static_cast<std::size_t>(t.numel()), lo, hi);
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  CORTEX_CHECK(static_cast<std::int64_t>(values.size()) == shape.numel())
      << "from_vector: " << values.size() << " values for shape "
      << shape.str();
  Tensor t(std::move(shape));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::view_into(Shape shape, const std::shared_ptr<float[]>& storage,
                         std::int64_t offset_elems) {
  CORTEX_CHECK(storage != nullptr) << "view_into on null storage";
  CORTEX_CHECK(offset_elems >= 0) << "view_into at negative offset";
  Tensor t;
  t.shape_ = std::move(shape);
  // Aliasing constructor: shares the storage's control block, points at
  // the slot. Destroying the arena last is therefore automatic.
  t.data_ = std::shared_ptr<float[]>(storage, storage.get() + offset_elems);
  return t;
}

float& Tensor::at(std::int64_t i) {
  CORTEX_CHECK(shape_.rank() == 1 && i >= 0 && i < shape_.dim(0))
      << "at(" << i << ") on shape " << shape_.str();
  return data()[i];
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  CORTEX_CHECK(shape_.rank() == 2 && i >= 0 && i < shape_.dim(0) && j >= 0 &&
               j < shape_.dim(1))
      << "at(" << i << "," << j << ") on shape " << shape_.str();
  return data()[i * shape_.dim(1) + j];
}

float Tensor::at(std::int64_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

Tensor Tensor::clone() const {
  Tensor t(shape_);
  std::memcpy(t.data(), data(), sizeof(float) * numel());
  return t;
}

void Tensor::zero() { std::memset(data(), 0, sizeof(float) * numel()); }

std::string Tensor::str(std::int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_.str() << " [";
  const auto n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data()[i];
  }
  if (numel() > n) os << ", ...";
  os << "]";
  return os.str();
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  CORTEX_CHECK(a.shape() == b.shape())
      << "max_abs_diff shape mismatch: " << a.shape().str() << " vs "
      << b.shape().str();
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  float scale = 0.0f;
  for (std::int64_t i = 0; i < b.numel(); ++i)
    scale = std::max(scale, std::fabs(b.data()[i]));
  return max_abs_diff(a, b) <= atol + rtol * scale;
}

}  // namespace cortex
