#pragma once
// The evaluation's model zoo (Table 2 plus §7.4's extra models):
//   TreeFC, DAG-RNN, child-sum TreeGRU, SimpleTreeGRU, child-sum TreeLSTM,
//   MV-RNN, TreeRNN (the Fig. 1 running example and the weighted variant),
//   and sequential LSTM/GRU for the GRNN comparison (Fig. 9).
//
// Every model carries two consistent definitions:
//   - an RA definition (ra::Model) that drives the compiler pipeline, and
//   - a CellProgram that every execution engine (Cortex + baselines) runs
//     numerically, so outputs are identical across frameworks.
// Equivalence of the two is enforced by tests (ILIR evaluator vs cell).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "models/cell.hpp"
#include "ra/model.hpp"
#include "support/rng.hpp"

namespace cortex::models {

/// A model plus the schedule-relevant structural metadata the execution
/// engine needs for accounting.
struct ModelDef {
  std::string name;
  /// RA definition driving the compiler pipeline. Optional so users can
  /// define cell-only models (engines fall back to the cell program).
  std::optional<ra::Model> model;
  CellProgram cell;
  std::int64_t hidden = 0;  ///< H
  std::int64_t vocab = 0;   ///< V

  /// Device-wide sync points per batch step when the fused kernel splits
  /// into dependent phases (GRNN-style phase structure; GRU cells use 2).
  std::int64_t sync_points_per_step = 1;
  /// Extra bytes per node forced by recursive refactoring (the TreeGRU
  /// h-gate's z*h_sum term crosses the refactored backedge and must be
  /// rematerialized; SimpleTreeGRU drops that term — Fig. 10c).
  std::int64_t refactor_extra_bytes_per_node = 0;
  /// Schedule computes one node per thread block, so unrolling needs no
  /// extra device-wide barriers (TreeRNN in Fig. 10b).
  bool block_local_schedule = false;

  /// Shapes of all parameters, keyed by name (single source of truth for
  /// both the RA input ops and the cell programs).
  std::vector<std::pair<std::string, std::vector<std::int64_t>>>
      param_shapes;

  std::int64_t state_width() const { return cell.state_width; }
};

// -- Table 2 models -----------------------------------------------------------

/// TreeFC (Looks et al. 2017 benchmark): h = relu(W [h_l; h_r] + b).
ModelDef make_treefc(std::int64_t hidden, std::int64_t vocab = 1000);

/// Recursive portion of DAG-RNN (Shuai et al. 2015):
/// h_v = tanh(U * sum_{u in preds(v)} h_u + x_v + b).
ModelDef make_dagrnn(std::int64_t hidden, std::int64_t vocab = 1000);

/// Child-sum TreeGRU.
ModelDef make_treegru(std::int64_t hidden, std::int64_t vocab = 1000);

/// SimpleTreeGRU (§7.4, footnote 4): h-gate h = (1-z) * h'.
ModelDef make_simple_treegru(std::int64_t hidden, std::int64_t vocab = 1000);

/// Child-sum TreeLSTM (Tai et al. 2015), recursive portion; state [h; c].
ModelDef make_treelstm(std::int64_t hidden, std::int64_t vocab = 1000);

/// MV-RNN (Socher et al. 2012b): state packs vector h and matrix M.
ModelDef make_mvrnn(std::int64_t hidden, std::int64_t vocab = 1000);

// -- §7.4 / examples models ---------------------------------------------------

/// TreeRNN: h = tanh(W h_l + U h_r + b) (the tree extension of a
/// sequential RNN used in the unrolling study, Fig. 10b).
ModelDef make_treernn(std::int64_t hidden, std::int64_t vocab = 1000);

/// The Fig. 1 running example: h = tanh(h_l + h_r), leaves are embeddings.
ModelDef make_treernn_fig1(std::int64_t hidden, std::int64_t vocab = 1000);

/// TreeRNN with a uniform zero initial leaf state (exercises computation
/// hoisting / constant propagation, §4.3).
ModelDef make_treernn_zeroleaf(std::int64_t hidden,
                               std::int64_t vocab = 1000);

// -- embedding-leaf variants ---------------------------------------------------
// The Table-2 bench models follow the paper's evaluated configuration
// ("recursive portion", input matvecs excluded): leaves carry a *uniform*
// initial state, which is what makes specialization + hoisting so
// effective (Fig. 10a). That makes same-height states identical, so the
// correctness/equivalence tests additionally use these variants whose
// leaves read per-word embeddings — indexing bugs cannot hide in them.

/// TreeFC with embedding leaves: leaf h = Emb[word].
ModelDef make_treefc_embed(std::int64_t hidden, std::int64_t vocab = 1000);

/// Child-sum TreeGRU with embedding leaves.
ModelDef make_treegru_embed(std::int64_t hidden, std::int64_t vocab = 1000);

/// Child-sum TreeLSTM with embedding leaves: leaf [h;c] = [Emb; EmbC].
ModelDef make_treelstm_embed(std::int64_t hidden, std::int64_t vocab = 1000);

/// Sequential LSTM over a chain (GRNN comparison, Fig. 9). Sequences are
/// degenerate trees: the left child is the previous timestep, the right
/// child a leaf carrying the embedded token.
ModelDef make_seq_lstm(std::int64_t hidden, std::int64_t vocab = 1000);

/// Sequential GRU over a chain (GRNN comparison, Fig. 9).
ModelDef make_seq_gru(std::int64_t hidden, std::int64_t vocab = 1000);

/// Appends a canonical structural encoding of everything engine
/// compilation reads from a ModelDef: name, hidden/vocab widths, the
/// accounting metadata (sync_points_per_step, refactor_extra_bytes_per_node,
/// block_local_schedule), the cell programs, the optional RA model, and
/// the parameter shapes.
///
/// Field sensitivity (fingerprint-collision tests pin this contract):
///   - order-SENSITIVE: every scalar field, cell op order (execution
///     order), the RA operator DAG;
///   - order-INSENSITIVE: `param_shapes` — it is a keyed lookup table, so
///     entries are encoded sorted by parameter name and reordering them
///     does not change the key;
///   - absent: parameter *values* (ModelParams) — compiled artifacts are
///     weight-independent, which is what lets engines with different
///     weights share one cached plan.
void fingerprint(const ModelDef& def, support::FingerprintBuilder& fb);

/// Allocates and randomly initializes all parameters of a model.
ModelParams init_params(const ModelDef& def, Rng& rng);

/// All Table 2 models at the paper's small hidden size (for sweeps).
std::vector<ModelDef> table2_models(bool small_hidden);

}  // namespace cortex::models
