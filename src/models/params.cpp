#include <cmath>

#include "models/model_zoo.hpp"

namespace cortex::models {

ModelParams init_params(const ModelDef& def, Rng& rng) {
  ModelParams params;
  for (const auto& [name, shape] : def.param_shapes) {
    Shape s(shape);
    // Scaled uniform init (1/sqrt(fan_in)) keeps pre-activations in the
    // responsive range of tanh/sigmoid so cross-framework equivalence
    // tests compare meaningful values, not saturated ±1s. Embedding
    // tables use a wider range.
    const bool is_table = shape.size() == 2 && shape[0] == def.vocab;
    float a = 0.5f;
    if (!is_table) {
      const std::int64_t fan_in = shape.back();
      a = 1.0f / std::sqrt(static_cast<float>(fan_in > 0 ? fan_in : 1));
    }
    params.tensors.emplace(name, Tensor::uniform(s, rng, -a, a));
  }
  return params;
}

std::vector<ModelDef> table2_models(bool small_hidden) {
  // Table 2 with the paper's hidden sizes: hs/hl are 256/512 for TreeFC,
  // DAG-RNN, TreeGRU and TreeLSTM, and 64/128 for MV-RNN.
  const std::int64_t h = small_hidden ? 256 : 512;
  const std::int64_t h_mv = small_hidden ? 64 : 128;
  std::vector<ModelDef> models;
  models.push_back(make_treefc(h));
  models.push_back(make_dagrnn(h));
  models.push_back(make_treegru(h));
  models.push_back(make_treelstm(h));
  models.push_back(make_mvrnn(h_mv));
  return models;
}

}  // namespace cortex::models
