#pragma once
// Cell programs: each model's per-node computation expressed as a short
// sequence of tensor operators over named registers. This is the
// operator-granularity view that the baseline frameworks (PyTorch-like,
// DyNet-like, Cavs-like) execute one kernel at a time, and that the Cortex
// execution engine fuses into batch kernels. Numerical semantics are
// shared by every engine, so cross-framework outputs are bit-identical and
// the RA/ILIR path can be validated against the same cell.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ra/expr.hpp"
#include "tensor/tensor.hpp"

namespace cortex::models {

/// Kinds of primitive cell operators.
enum class CellOpKind {
  kLeafEmbed,    ///< out = Table[word] (leaf nodes only)
  kLeafConst,    ///< out = constant vector (uniform initial state)
  kSliceChild,   ///< out = child_state[child][offset : offset+width]
  kChildSum,     ///< out = sum over children of child_state[*][offset:+width]
  kMatVec,       ///< out = Param @ in0 (Param is (width, |in0|))
  kNodeMatVec,   ///< out = mat(in0, width x width) @ in1 (MV-RNN)
  kMatStack2,    ///< out(H*H) = Param(H,2H) @ vstack(mat(in0), mat(in1))
  kEltwise,      ///< out[i] = expr(e0[i], e1[i], ..., params[i])
  kConcat2,      ///< out = concat(in0, in1)
};

/// One primitive operator of a cell program.
struct CellOp {
  CellOpKind kind = CellOpKind::kEltwise;
  std::string out;            ///< destination register
  std::int64_t width = 0;     ///< destination width

  int child = 0;              ///< kSliceChild: which child
  std::int64_t offset = 0;    ///< kSliceChild: offset into child state
  double constant = 0.0;      ///< kLeafConst

  std::string param;          ///< kLeafEmbed / kMatVec / kMatStack2 weight
  std::vector<std::string> ins;  ///< input registers

  /// kEltwise: scalar expression over vars "e0","e1",... (the inputs at
  /// element i) and loads of 1-D params indexed by var "i".
  ra::Expr expr;

  /// Floating-point operations this op performs per node.
  std::int64_t flops() const;
  /// Bytes of weight data this op reads per invocation (0 if none).
  std::int64_t param_bytes(const std::map<std::string,
                                          std::int64_t>& param_elems) const;
};

/// A compiled elementwise expression: flat postfix program executed per
/// element (fast path replacing AST interpretation).
class CompiledEltwise {
 public:
  CompiledEltwise() = default;
  /// Compiles `expr` given the input register names mapped to e0..ek and
  /// the list of param names it may load.
  explicit CompiledEltwise(const ra::Expr& expr);

  /// Evaluates at element i with inputs ins[j][i] and pre-resolved param
  /// pointers (order of param_names()). The hot-path form: no lookups.
  float eval(std::int64_t i, const float* const* ins,
             const float* const* params) const;

  /// Evaluates at element i with inputs ins[j][i]; params resolved by
  /// name through `params` (1-D tensors). Convenience/reference form.
  float eval(std::int64_t i, const std::vector<const float*>& ins,
             const std::map<std::string, const float*>& params) const;

  /// Evaluates the expression over a whole [rows, width] panel:
  /// out[r*width + i] = expr(ins[j][r*width + i], params[k][i]). The
  /// interpreter is strip-mined so each instruction runs over a vector of
  /// elements; per element the arithmetic is the identical scalar op
  /// sequence, so results are bit-identical to eval() element by element.
  void eval_panel(std::int64_t rows, std::int64_t width,
                  const float* const* ins, const float* const* params,
                  float* out) const;

  bool empty() const { return prog_.empty(); }
  /// Number of arithmetic instructions (used in flop accounting).
  std::int64_t arith_ops() const { return arith_ops_; }

 private:
  enum class OpCode : std::uint8_t {
    kPushInput, kPushParam, kPushConst,
    kAdd, kSub, kMul, kDiv, kMax, kMin,
    kTanh, kSigmoid, kRelu, kExp, kSelect,
  };
  struct Instr {
    OpCode op;
    std::int32_t slot = 0;   // input index / param index
    float constant = 0.0f;
  };
  void compile(const ra::Expr& e);

  std::vector<Instr> prog_;
  std::vector<std::string> param_names_;
  std::int64_t arith_ops_ = 0;
  std::int32_t max_depth_ = 0;  ///< peak operand-stack depth of prog_

 public:
  const std::vector<std::string>& param_names() const {
    return param_names_;
  }
};

/// Floating-point operations one cell op performs per node, given the
/// widths of all registers (from CellProgram::register_widths()). Used by
/// the execution engines' device-cost accounting.
std::int64_t cell_op_flops(const CellOp& op,
                           const std::map<std::string, std::int64_t>& widths);

/// Parameter tensors an op reads: its `param` plus any 1-D params loaded
/// by an eltwise expression. Used for weight-byte accounting.
std::vector<std::string> cell_op_params(const CellOp& op);

/// A full cell: leaf program + internal program over named registers.
struct CellProgram {
  std::vector<CellOp> leaf_ops;
  std::vector<CellOp> internal_ops;
  std::int64_t state_width = 0;  ///< width of the node state vector
  std::int64_t num_children = 2;

  /// Widths of all registers (computed from the ops).
  std::map<std::string, std::int64_t> register_widths() const;
  /// Sum of per-node flops over internal ops.
  std::int64_t internal_flops() const;
  /// Sum of per-node flops over leaf ops.
  std::int64_t leaf_flops() const;
  /// Validates register/width consistency; throws on error.
  void validate() const;
};

/// Appends a canonical structural encoding of one cell operator (every
/// field, including the compiled-away eltwise expression AST).
void fingerprint(const CellOp& op, support::FingerprintBuilder& fb);

/// Appends a canonical structural encoding of a cell program: leaf and
/// internal op sequences (order-sensitive — op order is execution order),
/// state width and child count.
void fingerprint(const CellProgram& cell, support::FingerprintBuilder& fb);

/// Model weights: named tensors keyed by parameter name.
struct ModelParams {
  std::map<std::string, Tensor> tensors;

  const Tensor& at(const std::string& name) const;
  std::int64_t total_bytes() const;
  std::int64_t elems(const std::string& name) const;
};

/// Executes one node's cell program natively (the shared numeric kernel
/// used by all engines). `child_states` holds num_children pointers to
/// state vectors (may be empty for leaves). Scratch registers are managed
/// by the caller via `regs` (register name -> buffer of its width).
void run_cell_node(const std::vector<CellOp>& ops, const ModelParams& params,
                   const std::vector<const float*>& child_states,
                   std::int32_t word,
                   std::map<std::string, std::vector<float>>& regs,
                   float* out_state, std::int64_t state_width);

/// Pre-compiled eltwise cache for hot loops (keyed by op pointer).
///
/// After construction the executor is read-only, so any number of threads
/// may call the Scratch-taking run_node overload concurrently as long as
/// each thread passes its own Scratch (the parallel wavefront executor
/// keeps one per pool worker). The scratch-free overload uses a built-in
/// Scratch and is therefore single-threaded.
class CellExecutor {
 public:
  /// Mutable state for one in-flight run_node call, reused across calls so
  /// the per-node hot loop performs no heap allocation: the named register
  /// buffers plus the hoisted per-op scratch (eltwise input-pointer list,
  /// kMatStack2 vstack buffer) that used to be allocated per call.
  struct Scratch {
    std::map<std::string, std::vector<float>> regs;
    std::vector<const float*> elt_ins;
    std::vector<float> stacked;
  };

  CellExecutor(const CellProgram& cell, const ModelParams& params);

  /// As run_cell_node, but with preallocated registers + compiled eltwise.
  void run_node(bool leaf, const std::vector<const float*>& child_states,
                std::int32_t word, float* out_state);
  /// Thread-safe variant: all mutable state lives in `scratch`.
  void run_node(bool leaf, const std::vector<const float*>& child_states,
                std::int32_t word, float* out_state, Scratch& scratch) const;

  const CellProgram& cell() const { return cell_; }
  const ModelParams& params() const { return params_; }

 private:
  void run_ops(const std::vector<CellOp>& ops,
               const std::vector<CompiledEltwise>& compiled,
               const std::vector<std::vector<const float*>>& eparams,
               const std::vector<const float*>& child_states,
               std::int32_t word, float* out_state, Scratch& scratch) const;

  const CellProgram& cell_;
  const ModelParams& params_;
  std::vector<CompiledEltwise> leaf_compiled_;
  std::vector<CompiledEltwise> internal_compiled_;
  /// Pre-resolved eltwise param pointers per op (order of the op's
  /// CompiledEltwise::param_names()); empty vectors for non-eltwise ops.
  std::vector<std::vector<const float*>> leaf_eparams_;
  std::vector<std::vector<const float*>> internal_eparams_;
  Scratch regs_;
};

/// Batched wavefront executor: runs one cell program over a whole dynamic
/// batch of nodes at once instead of node by node. Child states and
/// embedding rows are gathered into contiguous [rows, width] register
/// panels, every kMatVec becomes ONE panel GEMM (In @ W^T with the weight
/// pre-transposed; the k accumulation order inside kernels::gemm matches
/// kernels::gemv, so outputs are bit-identical to per-node execution),
/// and eltwise ops evaluate vectorized across the panel. Registers live
/// in a flat, index-addressed arena — no string maps on the hot path.
///
/// Immutable after construction: any number of threads may call run_batch
/// concurrently as long as each passes its own Panels (the engine keeps
/// one per pool worker and hands each worker a disjoint row range).
class BatchedCellExecutor {
 public:
  /// Per-thread workspace for run_batch, reused across calls: the
  /// register-panel arena, gather-index and register-written bookkeeping,
  /// the kMatStack2 vstack buffer, and the execution stats the engine
  /// drains into the profiler after a run.
  struct Panels {
    std::vector<float> arena;
    std::vector<std::int32_t> idx;
    std::vector<std::uint8_t> written;
    std::vector<float> stacked;
    // -- stats, accumulated across run_batch calls until drained --------
    std::int64_t gemm_calls = 0;      ///< panel GEMMs issued (kMatVec)
    std::int64_t panels_run = 0;      ///< run_batch invocations
    std::int64_t max_panel_rows = 0;  ///< largest panel row count
  };

  /// Never throws for shapes the per-node path accepts: panel execution
  /// needs strictly more than per-node execution does (e.g. eltwise input
  /// registers exactly as wide as the output, <= 8 eltwise inputs), so a
  /// cell that violates a panel-only invariant — or whose params are
  /// malformed — just marks the executor unsupported() and callers fall
  /// back to per-node execution (which raises the reference diagnostics).
  BatchedCellExecutor(const CellProgram& cell, const ModelParams& params);

  /// False when the cell program cannot run as panels; run_batch must
  /// not be called then (the engine falls back to the per-node path).
  bool supported() const { return supported_; }

  /// Executes the leaf or internal program for `rows` consecutively
  /// numbered nodes. `words` holds the per-row word ids; `child_offsets`
  /// the per-row CSR offsets (rows + 1 entries, absolute indices into
  /// `child_ids`); `states` the state table child rows are gathered from
  /// (row stride = state_width); `out` the nodes' contiguous
  /// [rows, state_width] destination rows. Same numeric semantics as
  /// rows calls of CellExecutor::run_node, bit for bit.
  void run_batch(bool leaf, std::int64_t rows, const std::int32_t* words,
                 const std::int32_t* child_offsets,
                 const std::int32_t* child_ids, const float* states,
                 float* out, Panels& p) const;

  /// Grows `p`'s buffers for panels of up to `rows` rows (optional; the
  /// engine calls it once per run with the linearization's
  /// max_batch_length so no growth happens inside the wavefront loop).
  void reserve(std::int64_t rows, Panels& p) const;

  const CellProgram& cell() const { return cell_; }
  /// Total float width of one arena row (sum of register widths).
  std::int64_t arena_width() const { return total_width_; }

 private:
  /// One cell op, pre-lowered for panel execution: register names
  /// resolved to arena indices, weights resolved (and transposed for
  /// kMatVec), eltwise compiled with param pointers pre-bound.
  struct BatchedOp {
    CellOpKind kind = CellOpKind::kEltwise;
    std::int64_t width = 0;
    int out_reg = -1;
    std::vector<int> in_regs;
    int child = 0;
    std::int64_t offset = 0;
    float constant = 0.0f;
    Tensor param;       ///< kLeafEmbed table / kMatStack2 weight
    Tensor param_t;     ///< kMatVec weight, transposed to (k, m)
    std::int64_t k = 0; ///< kMatVec reduction width
    CompiledEltwise compiled;
    std::vector<const float*> eparams;
    bool is_last = false;
  };

  std::vector<BatchedOp> compile_ops(const std::vector<CellOp>& ops) const;
  void run_ops(const std::vector<BatchedOp>& bops, std::int64_t rows,
               const std::int32_t* words, const std::int32_t* child_offsets,
               const std::int32_t* child_ids, const float* states,
               float* out, Panels& p) const;

  const CellProgram& cell_;
  const ModelParams& params_;
  std::map<std::string, int> reg_index_;
  std::vector<std::int64_t> reg_width_;   ///< by register index
  std::vector<std::int64_t> reg_offset_;  ///< arena offset in row-widths
  std::int64_t total_width_ = 0;
  std::vector<BatchedOp> leaf_bops_;
  std::vector<BatchedOp> internal_bops_;
  bool supported_ = false;
};

}  // namespace cortex::models
