#include "models/cell.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/activations.hpp"
#include "tensor/kernels.hpp"

namespace cortex::models {

std::int64_t CellOp::flops() const {
  switch (kind) {
    case CellOpKind::kMatVec:
      // 2 * m * k; k is the input width which equals param cols.
      return 0;  // computed by callers who know input widths; see below
    default:
      return 0;
  }
}

std::int64_t CellOp::param_bytes(
    const std::map<std::string, std::int64_t>& param_elems) const {
  if (param.empty()) return 0;
  auto it = param_elems.find(param);
  if (it == param_elems.end()) return 0;
  return it->second * static_cast<std::int64_t>(sizeof(float));
}

// ---------------------------------------------------------------------------
// CompiledEltwise
// ---------------------------------------------------------------------------

CompiledEltwise::CompiledEltwise(const ra::Expr& expr) { compile(expr); }

void CompiledEltwise::compile(const ra::Expr& e) {
  using ra::ExprKind;
  switch (e->kind) {
    case ExprKind::kFloatImm:
      prog_.push_back({OpCode::kPushConst, 0, static_cast<float>(e->fimm)});
      return;
    case ExprKind::kIntImm:
      prog_.push_back({OpCode::kPushConst, 0, static_cast<float>(e->iimm)});
      return;
    case ExprKind::kVar: {
      CORTEX_CHECK(e->name.size() >= 2 && e->name[0] == 'e')
          << "eltwise expr may only reference inputs e0..ek, got "
          << e->name;
      const std::int32_t slot = std::stoi(e->name.substr(1));
      prog_.push_back({OpCode::kPushInput, slot, 0.0f});
      return;
    }
    case ExprKind::kLoad: {
      // Param load: 1-D tensor indexed by the element variable "i".
      CORTEX_CHECK(e->args.size() == 1 &&
                   e->args[0]->kind == ExprKind::kVar &&
                   e->args[0]->name == "i")
          << "eltwise param loads must be param[i], got " << ra::to_string(e);
      std::int32_t slot = -1;
      for (std::size_t k = 0; k < param_names_.size(); ++k)
        if (param_names_[k] == e->name) slot = static_cast<std::int32_t>(k);
      if (slot < 0) {
        slot = static_cast<std::int32_t>(param_names_.size());
        param_names_.push_back(e->name);
      }
      prog_.push_back({OpCode::kPushParam, slot, 0.0f});
      return;
    }
    case ExprKind::kBinary: {
      compile(e->args[0]);
      compile(e->args[1]);
      ++arith_ops_;
      switch (e->bin) {
        case ra::BinOp::kAdd: prog_.push_back({OpCode::kAdd, 0, 0}); return;
        case ra::BinOp::kSub: prog_.push_back({OpCode::kSub, 0, 0}); return;
        case ra::BinOp::kMul: prog_.push_back({OpCode::kMul, 0, 0}); return;
        case ra::BinOp::kDiv: prog_.push_back({OpCode::kDiv, 0, 0}); return;
        case ra::BinOp::kMax: prog_.push_back({OpCode::kMax, 0, 0}); return;
        case ra::BinOp::kMin: prog_.push_back({OpCode::kMin, 0, 0}); return;
        default:
          CORTEX_CHECK(false)
              << "comparison ops unsupported in eltwise cell exprs";
      }
      return;
    }
    case ExprKind::kCall: {
      compile(e->args[0]);
      ++arith_ops_;
      switch (e->fn) {
        case ra::CallFn::kTanh:
          prog_.push_back({OpCode::kTanh, 0, 0});
          return;
        case ra::CallFn::kSigmoid:
          prog_.push_back({OpCode::kSigmoid, 0, 0});
          return;
        case ra::CallFn::kRelu:
          prog_.push_back({OpCode::kRelu, 0, 0});
          return;
        case ra::CallFn::kExp:
          prog_.push_back({OpCode::kExp, 0, 0});
          return;
      }
      return;
    }
    case ExprKind::kSelect:
      compile(e->args[0]);
      compile(e->args[1]);
      compile(e->args[2]);
      ++arith_ops_;
      prog_.push_back({OpCode::kSelect, 0, 0});
      return;
    default:
      CORTEX_CHECK(false) << "unsupported eltwise expr: " << ra::to_string(e);
  }
}

float CompiledEltwise::eval(
    std::int64_t i, const std::vector<const float*>& ins,
    const std::map<std::string, const float*>& params) const {
  float stack[32];
  int sp = 0;
  // Resolve param pointers once per call.
  const float* param_ptrs[8] = {nullptr};
  for (std::size_t k = 0; k < param_names_.size(); ++k) {
    auto it = params.find(param_names_[k]);
    CORTEX_CHECK(it != params.end())
        << "eltwise references unbound param " << param_names_[k];
    param_ptrs[k] = it->second;
  }
  for (const Instr& ins_i : prog_) {
    switch (ins_i.op) {
      case OpCode::kPushInput:
        stack[sp++] = ins[static_cast<std::size_t>(ins_i.slot)][i];
        break;
      case OpCode::kPushParam:
        stack[sp++] = param_ptrs[ins_i.slot][i];
        break;
      case OpCode::kPushConst:
        stack[sp++] = ins_i.constant;
        break;
      case OpCode::kAdd: --sp; stack[sp - 1] += stack[sp]; break;
      case OpCode::kSub: --sp; stack[sp - 1] -= stack[sp]; break;
      case OpCode::kMul: --sp; stack[sp - 1] *= stack[sp]; break;
      case OpCode::kDiv: --sp; stack[sp - 1] /= stack[sp]; break;
      case OpCode::kMax:
        --sp;
        stack[sp - 1] = std::max(stack[sp - 1], stack[sp]);
        break;
      case OpCode::kMin:
        --sp;
        stack[sp - 1] = std::min(stack[sp - 1], stack[sp]);
        break;
      case OpCode::kTanh:
        stack[sp - 1] = kernels::tanh_rational(stack[sp - 1]);
        break;
      case OpCode::kSigmoid:
        stack[sp - 1] = kernels::sigmoid_rational(stack[sp - 1]);
        break;
      case OpCode::kRelu:
        stack[sp - 1] = stack[sp - 1] > 0.0f ? stack[sp - 1] : 0.0f;
        break;
      case OpCode::kExp:
        stack[sp - 1] = std::exp(stack[sp - 1]);
        break;
      case OpCode::kSelect: {
        sp -= 2;
        stack[sp - 1] = stack[sp - 1] != 0.0f ? stack[sp] : stack[sp + 1];
        break;
      }
    }
  }
  return stack[0];
}

// ---------------------------------------------------------------------------
// CellProgram
// ---------------------------------------------------------------------------

namespace {
std::int64_t op_flops(const CellOp& op,
                      const std::map<std::string, std::int64_t>& widths) {
  auto in_width = [&](std::size_t k) -> std::int64_t {
    CORTEX_CHECK(k < op.ins.size()) << "op " << op.out << " missing input";
    auto it = widths.find(op.ins[k]);
    CORTEX_CHECK(it != widths.end()) << "unknown register " << op.ins[k];
    return it->second;
  };
  switch (op.kind) {
    case CellOpKind::kMatVec:
      return 2 * op.width * in_width(0);
    case CellOpKind::kNodeMatVec:
      return 2 * op.width * op.width;
    case CellOpKind::kMatStack2:
      // (H, 2H) @ (2H, H): out width = H*H.
      {
        const auto h2 = op.width;  // H*H
        const auto h = static_cast<std::int64_t>(std::llround(
            std::sqrt(static_cast<double>(h2))));
        return 2 * h * 2 * h * h;
      }
    case CellOpKind::kEltwise: {
      CompiledEltwise ce(op.expr);
      return ce.arith_ops() * op.width;
    }
    case CellOpKind::kChildSum:
      return 2 * op.width;  // assumes binary fan-in for static accounting
    default:
      return 0;
  }
}
}  // namespace

std::int64_t cell_op_flops(const CellOp& op,
                           const std::map<std::string, std::int64_t>& widths) {
  return op_flops(op, widths);
}

std::vector<std::string> cell_op_params(const CellOp& op) {
  std::vector<std::string> names;
  if (!op.param.empty()) names.push_back(op.param);
  if (op.kind == CellOpKind::kEltwise && op.expr)
    for (const std::string& p : ra::collect_loads(op.expr))
      names.push_back(p);
  return names;
}

std::map<std::string, std::int64_t> CellProgram::register_widths() const {
  std::map<std::string, std::int64_t> w;
  for (const auto* ops : {&leaf_ops, &internal_ops})
    for (const CellOp& op : *ops) {
      auto it = w.find(op.out);
      if (it != w.end()) {
        CORTEX_CHECK(it->second == op.width)
            << "register " << op.out << " redefined with width " << op.width
            << " (was " << it->second << ")";
      }
      w[op.out] = op.width;
    }
  return w;
}

std::int64_t CellProgram::internal_flops() const {
  const auto widths = register_widths();
  std::int64_t f = 0;
  for (const CellOp& op : internal_ops) f += op_flops(op, widths);
  return f;
}

std::int64_t CellProgram::leaf_flops() const {
  const auto widths = register_widths();
  std::int64_t f = 0;
  for (const CellOp& op : leaf_ops) f += op_flops(op, widths);
  return f;
}

void CellProgram::validate() const {
  CORTEX_CHECK(state_width > 0) << "cell has no state width";
  CORTEX_CHECK(!internal_ops.empty()) << "cell has no internal program";
  const auto widths = register_widths();
  for (const auto* ops : {&leaf_ops, &internal_ops}) {
    for (const CellOp& op : *ops)
      for (const std::string& in : op.ins)
        CORTEX_CHECK(widths.count(in) > 0)
            << "op " << op.out << " reads undefined register " << in;
    if (!ops->empty()) {
      const CellOp& last = ops->back();
      CORTEX_CHECK(last.width == state_width)
          << "final cell op '" << last.out << "' must produce the state ("
          << state_width << " wide), got " << last.width;
    }
  }
}

void fingerprint(const CellOp& op, support::FingerprintBuilder& fb) {
  fb.tag('c');
  fb.add(static_cast<std::int64_t>(op.kind));
  fb.add(op.out);
  fb.add(op.width);
  fb.add(op.child);
  fb.add(op.offset);
  fb.add(op.constant);
  fb.add(op.param);
  fb.add(static_cast<std::int64_t>(op.ins.size()));
  for (const std::string& in : op.ins) fb.add(in);
  ra::fingerprint(op.expr, fb);
}

void fingerprint(const CellProgram& cell, support::FingerprintBuilder& fb) {
  fb.tag('C');
  fb.add(cell.state_width);
  fb.add(cell.num_children);
  fb.add(static_cast<std::int64_t>(cell.leaf_ops.size()));
  for (const CellOp& op : cell.leaf_ops) fingerprint(op, fb);
  fb.add(static_cast<std::int64_t>(cell.internal_ops.size()));
  for (const CellOp& op : cell.internal_ops) fingerprint(op, fb);
}

// ---------------------------------------------------------------------------
// ModelParams
// ---------------------------------------------------------------------------

const Tensor& ModelParams::at(const std::string& name) const {
  auto it = tensors.find(name);
  CORTEX_CHECK(it != tensors.end()) << "missing model parameter " << name;
  return it->second;
}

std::int64_t ModelParams::total_bytes() const {
  std::int64_t b = 0;
  for (const auto& [name, t] : tensors)
    b += t.numel() * static_cast<std::int64_t>(sizeof(float));
  return b;
}

std::int64_t ModelParams::elems(const std::string& name) const {
  return at(name).numel();
}

// ---------------------------------------------------------------------------
// Native cell execution
// ---------------------------------------------------------------------------

namespace {

void exec_op(const CellOp& op, const CompiledEltwise* compiled,
             const ModelParams& params,
             const std::vector<const float*>& child_states,
             std::int32_t word,
             std::map<std::string, std::vector<float>>& regs,
             float* out_state, std::int64_t state_width, bool is_last) {
  float* out;
  if (is_last) {
    CORTEX_CHECK(op.width == state_width)
        << "last op width " << op.width << " != state width " << state_width;
    out = out_state;
  } else {
    auto& buf = regs[op.out];
    buf.resize(static_cast<std::size_t>(op.width));
    out = buf.data();
  }
  auto in_ptr = [&](std::size_t k) -> const float* {
    auto it = regs.find(op.ins[k]);
    CORTEX_CHECK(it != regs.end()) << "undefined register " << op.ins[k];
    return it->second.data();
  };
  switch (op.kind) {
    case CellOpKind::kLeafEmbed: {
      const Tensor& table = params.at(op.param);
      CORTEX_CHECK(word >= 0 && word < table.shape().dim(0))
          << "word id " << word << " outside embedding table";
      kernels::copy(table.row(word), out, op.width);
      break;
    }
    case CellOpKind::kLeafConst:
      kernels::fill(out, static_cast<float>(op.constant), op.width);
      break;
    case CellOpKind::kSliceChild: {
      CORTEX_CHECK(static_cast<std::size_t>(op.child) < child_states.size())
          << "cell reads child " << op.child << " but node has "
          << child_states.size();
      kernels::copy(child_states[static_cast<std::size_t>(op.child)] +
                        op.offset,
                    out, op.width);
      break;
    }
    case CellOpKind::kChildSum: {
      kernels::fill(out, 0.0f, op.width);
      for (const float* cs : child_states)
        kernels::acc(cs + op.offset, out, op.width);
      break;
    }
    case CellOpKind::kMatVec: {
      const Tensor& w = params.at(op.param);
      kernels::gemv(w.data(), in_ptr(0), out, w.shape().dim(0),
                    w.shape().dim(1));
      break;
    }
    case CellOpKind::kNodeMatVec: {
      // in0 is an H*H matrix register, in1 an H vector.
      kernels::gemv(in_ptr(0), in_ptr(1), out, op.width, op.width);
      break;
    }
    case CellOpKind::kMatStack2: {
      // out (H*H) = Param(H, 2H) @ vstack(mat(in0), mat(in1)) (2H, H).
      const Tensor& w = params.at(op.param);
      const auto h = w.shape().dim(0);
      CORTEX_CHECK(w.shape().dim(1) == 2 * h && op.width == h * h)
          << "kMatStack2 param must be (H,2H) with out H*H";
      std::vector<float> stacked(static_cast<std::size_t>(2 * h * h));
      kernels::copy(in_ptr(0), stacked.data(), h * h);
      kernels::copy(in_ptr(1), stacked.data() + h * h, h * h);
      kernels::gemm(w.data(), stacked.data(), out, h, 2 * h, h);
      break;
    }
    case CellOpKind::kEltwise: {
      CORTEX_CHECK(compiled != nullptr) << "eltwise without compiled expr";
      std::vector<const float*> ins;
      ins.reserve(op.ins.size());
      for (std::size_t k = 0; k < op.ins.size(); ++k)
        ins.push_back(in_ptr(k));
      std::map<std::string, const float*> pmap;
      for (const std::string& pn : compiled->param_names())
        pmap[pn] = params.at(pn).data();
      for (std::int64_t i = 0; i < op.width; ++i)
        out[i] = compiled->eval(i, ins, pmap);
      break;
    }
    case CellOpKind::kConcat2: {
      const std::int64_t w0 =
          static_cast<std::int64_t>(regs[op.ins[0]].size());
      kernels::copy(in_ptr(0), out, w0);
      kernels::copy(in_ptr(1), out + w0, op.width - w0);
      break;
    }
  }
  if (is_last) return;
}

}  // namespace

void run_cell_node(const std::vector<CellOp>& ops, const ModelParams& params,
                   const std::vector<const float*>& child_states,
                   std::int32_t word,
                   std::map<std::string, std::vector<float>>& regs,
                   float* out_state, std::int64_t state_width) {
  for (std::size_t k = 0; k < ops.size(); ++k) {
    CompiledEltwise ce;
    const bool is_elt = ops[k].kind == CellOpKind::kEltwise;
    if (is_elt) ce = CompiledEltwise(ops[k].expr);
    exec_op(ops[k], is_elt ? &ce : nullptr, params, child_states, word, regs,
            out_state, state_width, k + 1 == ops.size());
  }
}

CellExecutor::CellExecutor(const CellProgram& cell, const ModelParams& params)
    : cell_(cell), params_(params) {
  for (const CellOp& op : cell.leaf_ops)
    leaf_compiled_.push_back(op.kind == CellOpKind::kEltwise
                                 ? CompiledEltwise(op.expr)
                                 : CompiledEltwise());
  for (const CellOp& op : cell.internal_ops)
    internal_compiled_.push_back(op.kind == CellOpKind::kEltwise
                                     ? CompiledEltwise(op.expr)
                                     : CompiledEltwise());
}

void CellExecutor::run_ops(const std::vector<CellOp>& ops,
                           const std::vector<CompiledEltwise>& compiled,
                           const std::vector<const float*>& child_states,
                           std::int32_t word, float* out_state,
                           Scratch& scratch) const {
  for (std::size_t k = 0; k < ops.size(); ++k)
    exec_op(ops[k],
            ops[k].kind == CellOpKind::kEltwise ? &compiled[k] : nullptr,
            params_, child_states, word, scratch, out_state,
            cell_.state_width, k + 1 == ops.size());
}

void CellExecutor::run_node(bool leaf,
                            const std::vector<const float*>& child_states,
                            std::int32_t word, float* out_state) {
  run_node(leaf, child_states, word, out_state, regs_);
}

void CellExecutor::run_node(bool leaf,
                            const std::vector<const float*>& child_states,
                            std::int32_t word, float* out_state,
                            Scratch& scratch) const {
  if (leaf && !cell_.leaf_ops.empty())
    run_ops(cell_.leaf_ops, leaf_compiled_, child_states, word, out_state,
            scratch);
  else
    run_ops(cell_.internal_ops, internal_compiled_, child_states, word,
            out_state, scratch);
}

}  // namespace cortex::models
