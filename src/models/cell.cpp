#include "models/cell.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/activations.hpp"
#include "tensor/kernels.hpp"

namespace cortex::models {

std::int64_t CellOp::flops() const {
  switch (kind) {
    case CellOpKind::kMatVec:
      // 2 * m * k; k is the input width which equals param cols.
      return 0;  // computed by callers who know input widths; see below
    default:
      return 0;
  }
}

std::int64_t CellOp::param_bytes(
    const std::map<std::string, std::int64_t>& param_elems) const {
  if (param.empty()) return 0;
  auto it = param_elems.find(param);
  if (it == param_elems.end()) return 0;
  return it->second * static_cast<std::int64_t>(sizeof(float));
}

// ---------------------------------------------------------------------------
// CompiledEltwise
// ---------------------------------------------------------------------------

namespace {
/// Hard bounds of the postfix interpreter's fixed-size operand stack and
/// param-pointer table; enforced at compile() so eval can never overrun.
constexpr std::int32_t kMaxStackDepth = 32;
constexpr std::size_t kMaxEltParams = 8;
/// Elements per interpreter strip in eval_panel (8 KiB of stack at max
/// depth; long enough to amortize instruction dispatch, short enough to
/// stay in L1).
constexpr std::int64_t kEltStrip = 64;
}  // namespace

CompiledEltwise::CompiledEltwise(const ra::Expr& expr) {
  compile(expr);
  // Walk the program once to bound the operand stack depth.
  std::int32_t depth = 0;
  for (const Instr& it : prog_) {
    switch (it.op) {
      case OpCode::kPushInput:
      case OpCode::kPushParam:
      case OpCode::kPushConst:
        ++depth;
        break;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kMax:
      case OpCode::kMin:
        --depth;
        break;
      case OpCode::kSelect:
        depth -= 2;
        break;
      default:  // unary calls leave the depth unchanged
        break;
    }
    max_depth_ = std::max(max_depth_, depth);
  }
  CORTEX_CHECK(max_depth_ <= kMaxStackDepth)
      << "eltwise expression exceeds operand stack depth " << kMaxStackDepth;
  CORTEX_CHECK(param_names_.size() <= kMaxEltParams)
      << "eltwise expression loads more than " << kMaxEltParams << " params";
}

void CompiledEltwise::compile(const ra::Expr& e) {
  using ra::ExprKind;
  switch (e->kind) {
    case ExprKind::kFloatImm:
      prog_.push_back({OpCode::kPushConst, 0, static_cast<float>(e->fimm)});
      return;
    case ExprKind::kIntImm:
      prog_.push_back({OpCode::kPushConst, 0, static_cast<float>(e->iimm)});
      return;
    case ExprKind::kVar: {
      CORTEX_CHECK(e->name.size() >= 2 && e->name[0] == 'e')
          << "eltwise expr may only reference inputs e0..ek, got "
          << e->name;
      const std::int32_t slot = std::stoi(e->name.substr(1));
      prog_.push_back({OpCode::kPushInput, slot, 0.0f});
      return;
    }
    case ExprKind::kLoad: {
      // Param load: 1-D tensor indexed by the element variable "i".
      CORTEX_CHECK(e->args.size() == 1 &&
                   e->args[0]->kind == ExprKind::kVar &&
                   e->args[0]->name == "i")
          << "eltwise param loads must be param[i], got " << ra::to_string(e);
      std::int32_t slot = -1;
      for (std::size_t k = 0; k < param_names_.size(); ++k)
        if (param_names_[k] == e->name) slot = static_cast<std::int32_t>(k);
      if (slot < 0) {
        slot = static_cast<std::int32_t>(param_names_.size());
        param_names_.push_back(e->name);
      }
      prog_.push_back({OpCode::kPushParam, slot, 0.0f});
      return;
    }
    case ExprKind::kBinary: {
      compile(e->args[0]);
      compile(e->args[1]);
      ++arith_ops_;
      switch (e->bin) {
        case ra::BinOp::kAdd: prog_.push_back({OpCode::kAdd, 0, 0}); return;
        case ra::BinOp::kSub: prog_.push_back({OpCode::kSub, 0, 0}); return;
        case ra::BinOp::kMul: prog_.push_back({OpCode::kMul, 0, 0}); return;
        case ra::BinOp::kDiv: prog_.push_back({OpCode::kDiv, 0, 0}); return;
        case ra::BinOp::kMax: prog_.push_back({OpCode::kMax, 0, 0}); return;
        case ra::BinOp::kMin: prog_.push_back({OpCode::kMin, 0, 0}); return;
        default:
          CORTEX_CHECK(false)
              << "comparison ops unsupported in eltwise cell exprs";
      }
      return;
    }
    case ExprKind::kCall: {
      compile(e->args[0]);
      ++arith_ops_;
      switch (e->fn) {
        case ra::CallFn::kTanh:
          prog_.push_back({OpCode::kTanh, 0, 0});
          return;
        case ra::CallFn::kSigmoid:
          prog_.push_back({OpCode::kSigmoid, 0, 0});
          return;
        case ra::CallFn::kRelu:
          prog_.push_back({OpCode::kRelu, 0, 0});
          return;
        case ra::CallFn::kExp:
          prog_.push_back({OpCode::kExp, 0, 0});
          return;
      }
      return;
    }
    case ExprKind::kSelect:
      compile(e->args[0]);
      compile(e->args[1]);
      compile(e->args[2]);
      ++arith_ops_;
      prog_.push_back({OpCode::kSelect, 0, 0});
      return;
    default:
      CORTEX_CHECK(false) << "unsupported eltwise expr: " << ra::to_string(e);
  }
}

float CompiledEltwise::eval(
    std::int64_t i, const std::vector<const float*>& ins,
    const std::map<std::string, const float*>& params) const {
  // Resolve param pointers, then defer to the pointer form.
  const float* param_ptrs[kMaxEltParams] = {nullptr};
  for (std::size_t k = 0; k < param_names_.size(); ++k) {
    auto it = params.find(param_names_[k]);
    CORTEX_CHECK(it != params.end())
        << "eltwise references unbound param " << param_names_[k];
    param_ptrs[k] = it->second;
  }
  return eval(i, ins.data(), param_ptrs);
}

float CompiledEltwise::eval(std::int64_t i, const float* const* ins,
                            const float* const* params) const {
  float stack[kMaxStackDepth];
  int sp = 0;
  for (const Instr& ins_i : prog_) {
    switch (ins_i.op) {
      case OpCode::kPushInput:
        stack[sp++] = ins[static_cast<std::size_t>(ins_i.slot)][i];
        break;
      case OpCode::kPushParam:
        stack[sp++] = params[ins_i.slot][i];
        break;
      case OpCode::kPushConst:
        stack[sp++] = ins_i.constant;
        break;
      case OpCode::kAdd: --sp; stack[sp - 1] += stack[sp]; break;
      case OpCode::kSub: --sp; stack[sp - 1] -= stack[sp]; break;
      case OpCode::kMul: --sp; stack[sp - 1] *= stack[sp]; break;
      case OpCode::kDiv: --sp; stack[sp - 1] /= stack[sp]; break;
      case OpCode::kMax:
        --sp;
        stack[sp - 1] = std::max(stack[sp - 1], stack[sp]);
        break;
      case OpCode::kMin:
        --sp;
        stack[sp - 1] = std::min(stack[sp - 1], stack[sp]);
        break;
      case OpCode::kTanh:
        stack[sp - 1] = kernels::tanh_rational(stack[sp - 1]);
        break;
      case OpCode::kSigmoid:
        stack[sp - 1] = kernels::sigmoid_rational(stack[sp - 1]);
        break;
      case OpCode::kRelu:
        stack[sp - 1] = stack[sp - 1] > 0.0f ? stack[sp - 1] : 0.0f;
        break;
      case OpCode::kExp:
        stack[sp - 1] = std::exp(stack[sp - 1]);
        break;
      case OpCode::kSelect: {
        sp -= 2;
        stack[sp - 1] = stack[sp - 1] != 0.0f ? stack[sp] : stack[sp + 1];
        break;
      }
    }
  }
  return stack[0];
}

void CompiledEltwise::eval_panel(std::int64_t rows, std::int64_t width,
                                 const float* const* ins,
                                 const float* const* params,
                                 float* out) const {
  // Strip-mined interpretation: each instruction runs over a strip of
  // elements, amortizing the dispatch switch. Per element the arithmetic
  // is the identical scalar op sequence eval() performs (elementwise ops
  // carry no cross-element accumulation), so the panel result is
  // bit-identical to per-element evaluation in any order.
  float stack[kMaxStackDepth][kEltStrip];
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t base = r * width;
    for (std::int64_t i0 = 0; i0 < width; i0 += kEltStrip) {
      const std::int64_t len = std::min(kEltStrip, width - i0);
      int sp = 0;
      for (const Instr& it : prog_) {
        switch (it.op) {
          case OpCode::kPushInput: {
            const float* src =
                ins[static_cast<std::size_t>(it.slot)] + base + i0;
            float* dst = stack[sp++];
            for (std::int64_t e = 0; e < len; ++e) dst[e] = src[e];
            break;
          }
          case OpCode::kPushParam: {
            // Params are 1-D over the register width: index i, not r*w+i.
            const float* src = params[it.slot] + i0;
            float* dst = stack[sp++];
            for (std::int64_t e = 0; e < len; ++e) dst[e] = src[e];
            break;
          }
          case OpCode::kPushConst: {
            float* dst = stack[sp++];
            for (std::int64_t e = 0; e < len; ++e) dst[e] = it.constant;
            break;
          }
          case OpCode::kAdd: {
            --sp;
            float* a = stack[sp - 1];
            const float* b = stack[sp];
            for (std::int64_t e = 0; e < len; ++e) a[e] += b[e];
            break;
          }
          case OpCode::kSub: {
            --sp;
            float* a = stack[sp - 1];
            const float* b = stack[sp];
            for (std::int64_t e = 0; e < len; ++e) a[e] -= b[e];
            break;
          }
          case OpCode::kMul: {
            --sp;
            float* a = stack[sp - 1];
            const float* b = stack[sp];
            for (std::int64_t e = 0; e < len; ++e) a[e] *= b[e];
            break;
          }
          case OpCode::kDiv: {
            --sp;
            float* a = stack[sp - 1];
            const float* b = stack[sp];
            for (std::int64_t e = 0; e < len; ++e) a[e] /= b[e];
            break;
          }
          case OpCode::kMax: {
            --sp;
            float* a = stack[sp - 1];
            const float* b = stack[sp];
            for (std::int64_t e = 0; e < len; ++e)
              a[e] = std::max(a[e], b[e]);
            break;
          }
          case OpCode::kMin: {
            --sp;
            float* a = stack[sp - 1];
            const float* b = stack[sp];
            for (std::int64_t e = 0; e < len; ++e)
              a[e] = std::min(a[e], b[e]);
            break;
          }
          case OpCode::kTanh: {
            float* a = stack[sp - 1];
            for (std::int64_t e = 0; e < len; ++e)
              a[e] = kernels::tanh_rational(a[e]);
            break;
          }
          case OpCode::kSigmoid: {
            float* a = stack[sp - 1];
            for (std::int64_t e = 0; e < len; ++e)
              a[e] = kernels::sigmoid_rational(a[e]);
            break;
          }
          case OpCode::kRelu: {
            float* a = stack[sp - 1];
            for (std::int64_t e = 0; e < len; ++e)
              a[e] = a[e] > 0.0f ? a[e] : 0.0f;
            break;
          }
          case OpCode::kExp: {
            float* a = stack[sp - 1];
            for (std::int64_t e = 0; e < len; ++e) a[e] = std::exp(a[e]);
            break;
          }
          case OpCode::kSelect: {
            sp -= 2;
            float* c = stack[sp - 1];
            const float* t = stack[sp];
            const float* f = stack[sp + 1];
            for (std::int64_t e = 0; e < len; ++e)
              c[e] = c[e] != 0.0f ? t[e] : f[e];
            break;
          }
        }
      }
      float* dst = out + base + i0;
      const float* s0 = stack[0];
      for (std::int64_t e = 0; e < len; ++e) dst[e] = s0[e];
    }
  }
}

// ---------------------------------------------------------------------------
// CellProgram
// ---------------------------------------------------------------------------

namespace {
std::int64_t op_flops(const CellOp& op,
                      const std::map<std::string, std::int64_t>& widths) {
  auto in_width = [&](std::size_t k) -> std::int64_t {
    CORTEX_CHECK(k < op.ins.size()) << "op " << op.out << " missing input";
    auto it = widths.find(op.ins[k]);
    CORTEX_CHECK(it != widths.end()) << "unknown register " << op.ins[k];
    return it->second;
  };
  switch (op.kind) {
    case CellOpKind::kMatVec:
      return 2 * op.width * in_width(0);
    case CellOpKind::kNodeMatVec:
      return 2 * op.width * op.width;
    case CellOpKind::kMatStack2:
      // (H, 2H) @ (2H, H): out width = H*H.
      {
        const auto h2 = op.width;  // H*H
        const auto h = static_cast<std::int64_t>(std::llround(
            std::sqrt(static_cast<double>(h2))));
        return 2 * h * 2 * h * h;
      }
    case CellOpKind::kEltwise: {
      CompiledEltwise ce(op.expr);
      return ce.arith_ops() * op.width;
    }
    case CellOpKind::kChildSum:
      return 2 * op.width;  // assumes binary fan-in for static accounting
    default:
      return 0;
  }
}
}  // namespace

std::int64_t cell_op_flops(const CellOp& op,
                           const std::map<std::string, std::int64_t>& widths) {
  return op_flops(op, widths);
}

std::vector<std::string> cell_op_params(const CellOp& op) {
  std::vector<std::string> names;
  if (!op.param.empty()) names.push_back(op.param);
  if (op.kind == CellOpKind::kEltwise && op.expr)
    for (const std::string& p : ra::collect_loads(op.expr))
      names.push_back(p);
  return names;
}

std::map<std::string, std::int64_t> CellProgram::register_widths() const {
  std::map<std::string, std::int64_t> w;
  for (const auto* ops : {&leaf_ops, &internal_ops})
    for (const CellOp& op : *ops) {
      auto it = w.find(op.out);
      if (it != w.end()) {
        CORTEX_CHECK(it->second == op.width)
            << "register " << op.out << " redefined with width " << op.width
            << " (was " << it->second << ")";
      }
      w[op.out] = op.width;
    }
  return w;
}

std::int64_t CellProgram::internal_flops() const {
  const auto widths = register_widths();
  std::int64_t f = 0;
  for (const CellOp& op : internal_ops) f += op_flops(op, widths);
  return f;
}

std::int64_t CellProgram::leaf_flops() const {
  const auto widths = register_widths();
  std::int64_t f = 0;
  for (const CellOp& op : leaf_ops) f += op_flops(op, widths);
  return f;
}

void CellProgram::validate() const {
  CORTEX_CHECK(state_width > 0) << "cell has no state width";
  CORTEX_CHECK(!internal_ops.empty()) << "cell has no internal program";
  const auto widths = register_widths();
  for (const auto* ops : {&leaf_ops, &internal_ops}) {
    for (const CellOp& op : *ops)
      for (const std::string& in : op.ins)
        CORTEX_CHECK(widths.count(in) > 0)
            << "op " << op.out << " reads undefined register " << in;
    if (!ops->empty()) {
      const CellOp& last = ops->back();
      CORTEX_CHECK(last.width == state_width)
          << "final cell op '" << last.out << "' must produce the state ("
          << state_width << " wide), got " << last.width;
    }
  }
}

void fingerprint(const CellOp& op, support::FingerprintBuilder& fb) {
  fb.tag('c');
  fb.add(static_cast<std::int64_t>(op.kind));
  fb.add(op.out);
  fb.add(op.width);
  fb.add(op.child);
  fb.add(op.offset);
  fb.add(op.constant);
  fb.add(op.param);
  fb.add(static_cast<std::int64_t>(op.ins.size()));
  for (const std::string& in : op.ins) fb.add(in);
  ra::fingerprint(op.expr, fb);
}

void fingerprint(const CellProgram& cell, support::FingerprintBuilder& fb) {
  fb.tag('C');
  fb.add(cell.state_width);
  fb.add(cell.num_children);
  fb.add(static_cast<std::int64_t>(cell.leaf_ops.size()));
  for (const CellOp& op : cell.leaf_ops) fingerprint(op, fb);
  fb.add(static_cast<std::int64_t>(cell.internal_ops.size()));
  for (const CellOp& op : cell.internal_ops) fingerprint(op, fb);
}

// ---------------------------------------------------------------------------
// ModelParams
// ---------------------------------------------------------------------------

const Tensor& ModelParams::at(const std::string& name) const {
  auto it = tensors.find(name);
  CORTEX_CHECK(it != tensors.end()) << "missing model parameter " << name;
  return it->second;
}

std::int64_t ModelParams::total_bytes() const {
  std::int64_t b = 0;
  for (const auto& [name, t] : tensors)
    b += t.numel() * static_cast<std::int64_t>(sizeof(float));
  return b;
}

std::int64_t ModelParams::elems(const std::string& name) const {
  return at(name).numel();
}

// ---------------------------------------------------------------------------
// Native cell execution
// ---------------------------------------------------------------------------

namespace {

/// Executes one cell op. `elt_params` (pre-resolved eltwise param
/// pointers), `elt_ins` and `stacked` (hoisted per-op scratch buffers)
/// are optional: the CellExecutor hot path passes all three so the loop
/// allocates nothing; the naive run_cell_node reference passes null and
/// resolves/allocates per call.
void exec_op(const CellOp& op, const CompiledEltwise* compiled,
             const float* const* elt_params, const ModelParams& params,
             const std::vector<const float*>& child_states,
             std::int32_t word,
             std::map<std::string, std::vector<float>>& regs,
             std::vector<const float*>* elt_ins, std::vector<float>* stacked,
             float* out_state, std::int64_t state_width, bool is_last) {
  float* out;
  if (is_last) {
    CORTEX_CHECK(op.width == state_width)
        << "last op width " << op.width << " != state width " << state_width;
    out = out_state;
  } else {
    auto& buf = regs[op.out];
    buf.resize(static_cast<std::size_t>(op.width));
    out = buf.data();
  }
  auto in_ptr = [&](std::size_t k) -> const float* {
    auto it = regs.find(op.ins[k]);
    CORTEX_CHECK(it != regs.end()) << "undefined register " << op.ins[k];
    return it->second.data();
  };
  switch (op.kind) {
    case CellOpKind::kLeafEmbed: {
      const Tensor& table = params.at(op.param);
      CORTEX_CHECK(word >= 0 && word < table.shape().dim(0))
          << "word id " << word << " outside embedding table";
      kernels::copy(table.row(word), out, op.width);
      break;
    }
    case CellOpKind::kLeafConst:
      kernels::fill(out, static_cast<float>(op.constant), op.width);
      break;
    case CellOpKind::kSliceChild: {
      CORTEX_CHECK(static_cast<std::size_t>(op.child) < child_states.size())
          << "cell reads child " << op.child << " but node has "
          << child_states.size();
      kernels::copy(child_states[static_cast<std::size_t>(op.child)] +
                        op.offset,
                    out, op.width);
      break;
    }
    case CellOpKind::kChildSum: {
      kernels::fill(out, 0.0f, op.width);
      for (const float* cs : child_states)
        kernels::acc(cs + op.offset, out, op.width);
      break;
    }
    case CellOpKind::kMatVec: {
      const Tensor& w = params.at(op.param);
      kernels::gemv(w.data(), in_ptr(0), out, w.shape().dim(0),
                    w.shape().dim(1));
      break;
    }
    case CellOpKind::kNodeMatVec: {
      // in0 is an H*H matrix register, in1 an H vector.
      kernels::gemv(in_ptr(0), in_ptr(1), out, op.width, op.width);
      break;
    }
    case CellOpKind::kMatStack2: {
      // out (H*H) = Param(H, 2H) @ vstack(mat(in0), mat(in1)) (2H, H).
      const Tensor& w = params.at(op.param);
      const auto h = w.shape().dim(0);
      CORTEX_CHECK(w.shape().dim(1) == 2 * h && op.width == h * h)
          << "kMatStack2 param must be (H,2H) with out H*H";
      std::vector<float> local_stacked;
      std::vector<float>& st = stacked ? *stacked : local_stacked;
      st.resize(static_cast<std::size_t>(2 * h * h));
      kernels::copy(in_ptr(0), st.data(), h * h);
      kernels::copy(in_ptr(1), st.data() + h * h, h * h);
      kernels::gemm(w.data(), st.data(), out, h, 2 * h, h);
      break;
    }
    case CellOpKind::kEltwise: {
      CORTEX_CHECK(compiled != nullptr) << "eltwise without compiled expr";
      std::vector<const float*> local_ins;
      std::vector<const float*>& ins = elt_ins ? *elt_ins : local_ins;
      ins.clear();
      ins.reserve(op.ins.size());
      for (std::size_t k = 0; k < op.ins.size(); ++k)
        ins.push_back(in_ptr(k));
      const float* local_params[kMaxEltParams] = {nullptr};
      if (elt_params == nullptr) {
        const auto& names = compiled->param_names();
        for (std::size_t k = 0; k < names.size(); ++k)
          local_params[k] = params.at(names[k]).data();
        elt_params = local_params;
      }
      for (std::int64_t i = 0; i < op.width; ++i)
        out[i] = compiled->eval(i, ins.data(), elt_params);
      break;
    }
    case CellOpKind::kConcat2: {
      const std::int64_t w0 =
          static_cast<std::int64_t>(regs[op.ins[0]].size());
      kernels::copy(in_ptr(0), out, w0);
      kernels::copy(in_ptr(1), out + w0, op.width - w0);
      break;
    }
  }
  if (is_last) return;
}

}  // namespace

void run_cell_node(const std::vector<CellOp>& ops, const ModelParams& params,
                   const std::vector<const float*>& child_states,
                   std::int32_t word,
                   std::map<std::string, std::vector<float>>& regs,
                   float* out_state, std::int64_t state_width) {
  for (std::size_t k = 0; k < ops.size(); ++k) {
    CompiledEltwise ce;
    const bool is_elt = ops[k].kind == CellOpKind::kEltwise;
    if (is_elt) ce = CompiledEltwise(ops[k].expr);
    exec_op(ops[k], is_elt ? &ce : nullptr, /*elt_params=*/nullptr, params,
            child_states, word, regs, /*elt_ins=*/nullptr,
            /*stacked=*/nullptr, out_state, state_width,
            k + 1 == ops.size());
  }
}

namespace {
/// Pre-resolves each eltwise op's param pointers (in param_names() order)
/// so the hot loop never touches the params map.
std::vector<std::vector<const float*>> resolve_eparams(
    const std::vector<CellOp>& ops,
    const std::vector<CompiledEltwise>& compiled, const ModelParams& params) {
  std::vector<std::vector<const float*>> out;
  out.reserve(ops.size());
  for (std::size_t k = 0; k < ops.size(); ++k) {
    std::vector<const float*> ptrs;
    if (ops[k].kind == CellOpKind::kEltwise)
      for (const std::string& pn : compiled[k].param_names())
        ptrs.push_back(params.at(pn).data());
    out.push_back(std::move(ptrs));
  }
  return out;
}
}  // namespace

CellExecutor::CellExecutor(const CellProgram& cell, const ModelParams& params)
    : cell_(cell), params_(params) {
  for (const CellOp& op : cell.leaf_ops)
    leaf_compiled_.push_back(op.kind == CellOpKind::kEltwise
                                 ? CompiledEltwise(op.expr)
                                 : CompiledEltwise());
  for (const CellOp& op : cell.internal_ops)
    internal_compiled_.push_back(op.kind == CellOpKind::kEltwise
                                     ? CompiledEltwise(op.expr)
                                     : CompiledEltwise());
  leaf_eparams_ = resolve_eparams(cell.leaf_ops, leaf_compiled_, params);
  internal_eparams_ =
      resolve_eparams(cell.internal_ops, internal_compiled_, params);
}

void CellExecutor::run_ops(const std::vector<CellOp>& ops,
                           const std::vector<CompiledEltwise>& compiled,
                           const std::vector<std::vector<const float*>>& eparams,
                           const std::vector<const float*>& child_states,
                           std::int32_t word, float* out_state,
                           Scratch& scratch) const {
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const bool is_elt = ops[k].kind == CellOpKind::kEltwise;
    exec_op(ops[k], is_elt ? &compiled[k] : nullptr,
            is_elt && !eparams[k].empty() ? eparams[k].data() : nullptr,
            params_, child_states, word, scratch.regs, &scratch.elt_ins,
            &scratch.stacked, out_state, cell_.state_width,
            k + 1 == ops.size());
  }
}

void CellExecutor::run_node(bool leaf,
                            const std::vector<const float*>& child_states,
                            std::int32_t word, float* out_state) {
  run_node(leaf, child_states, word, out_state, regs_);
}

void CellExecutor::run_node(bool leaf,
                            const std::vector<const float*>& child_states,
                            std::int32_t word, float* out_state,
                            Scratch& scratch) const {
  if (leaf && !cell_.leaf_ops.empty())
    run_ops(cell_.leaf_ops, leaf_compiled_, leaf_eparams_, child_states,
            word, out_state, scratch);
  else
    run_ops(cell_.internal_ops, internal_compiled_, internal_eparams_,
            child_states, word, out_state, scratch);
}

// ---------------------------------------------------------------------------
// BatchedCellExecutor
// ---------------------------------------------------------------------------

BatchedCellExecutor::BatchedCellExecutor(const CellProgram& cell,
                                         const ModelParams& params)
    : cell_(cell), params_(params) {
  // Flat register layout: every register of the (merged leaf + internal)
  // program gets an index and a row-width offset into the arena. The map
  // is ordered, so the layout is deterministic.
  for (const auto& [name, w] : cell.register_widths()) {
    reg_index_[name] = static_cast<int>(reg_width_.size());
    reg_width_.push_back(w);
    reg_offset_.push_back(total_width_);
    total_width_ += w;
  }
  // Panel lowering enforces stricter invariants than per-node execution
  // (see the class comment); a cell that only the per-node path can run
  // must not fail engine construction, so lowering failure just leaves
  // the executor unsupported.
  try {
    leaf_bops_ = compile_ops(cell.leaf_ops);
    internal_bops_ = compile_ops(cell.internal_ops);
    supported_ = true;
  } catch (const Error&) {
    leaf_bops_.clear();
    internal_bops_.clear();
    supported_ = false;
  }
}

std::vector<BatchedCellExecutor::BatchedOp> BatchedCellExecutor::compile_ops(
    const std::vector<CellOp>& ops) const {
  std::vector<BatchedOp> bops;
  bops.reserve(ops.size());
  for (std::size_t n = 0; n < ops.size(); ++n) {
    const CellOp& op = ops[n];
    BatchedOp b;
    b.kind = op.kind;
    b.width = op.width;
    b.child = op.child;
    b.offset = op.offset;
    b.constant = static_cast<float>(op.constant);
    b.is_last = n + 1 == ops.size();
    // The last op writes straight into the caller's [rows, state_width]
    // destination; any other width would stride into other nodes' rows
    // (the per-node path checks the same thing at run time).
    CORTEX_CHECK(!b.is_last || op.width == cell_.state_width)
        << "last op width " << op.width << " != state width "
        << cell_.state_width;
    b.out_reg = reg_index_.at(op.out);
    for (const std::string& in : op.ins) {
      auto it = reg_index_.find(in);
      CORTEX_CHECK(it != reg_index_.end())
          << "op " << op.out << " reads undefined register " << in;
      b.in_regs.push_back(it->second);
    }
    switch (op.kind) {
      case CellOpKind::kLeafEmbed: {
        b.param = params_.at(op.param);
        CORTEX_CHECK(b.param.shape().rank() == 2 &&
                     b.param.shape().dim(1) == op.width)
            << "embedding table " << op.param << " rows must be "
            << op.width << " wide";
        break;
      }
      case CellOpKind::kMatVec: {
        const Tensor& w = params_.at(op.param);
        CORTEX_CHECK(w.shape().rank() == 2 && w.shape().dim(0) == op.width)
            << "kMatVec param " << op.param << " must have " << op.width
            << " rows";
        b.k = w.shape().dim(1);
        CORTEX_CHECK(reg_width_[static_cast<std::size_t>(b.in_regs[0])] ==
                     b.k)
            << "kMatVec input register width != param cols for " << op.out;
        // Transposed copy: the panel GEMM C = In @ W^T wants B = W^T laid
        // out (k, m) so its inner loops stay unit-stride.
        b.param_t = Tensor(Shape{b.k, op.width});
        kernels::transpose(w.data(), b.param_t.data(), op.width, b.k);
        break;
      }
      case CellOpKind::kMatStack2: {
        b.param = params_.at(op.param);
        const auto h = b.param.shape().dim(0);
        CORTEX_CHECK(b.param.shape().dim(1) == 2 * h && op.width == h * h)
            << "kMatStack2 param must be (H,2H) with out H*H";
        break;
      }
      case CellOpKind::kEltwise: {
        b.compiled = CompiledEltwise(op.expr);
        CORTEX_CHECK(op.ins.size() <= kMaxEltParams)
            << "eltwise op " << op.out << " has too many inputs";
        // Panel evaluation addresses input element (r, i) at r*width + i,
        // which requires every input panel to share the op's width (true
        // for every gate/eltwise op in the zoo; per-node execution only
        // needs width(in) >= width(out)).
        for (const int in : b.in_regs)
          CORTEX_CHECK(reg_width_[static_cast<std::size_t>(in)] == op.width)
              << "eltwise op " << op.out
              << " input width != output width (unsupported in batched "
                 "execution)";
        for (const std::string& pn : b.compiled.param_names())
          b.eparams.push_back(params_.at(pn).data());
        break;
      }
      default:
        break;
    }
    bops.push_back(std::move(b));
  }
  return bops;
}

void BatchedCellExecutor::reserve(std::int64_t rows, Panels& p) const {
  p.arena.reserve(static_cast<std::size_t>(total_width_ * rows));
  p.idx.reserve(static_cast<std::size_t>(rows));
  p.written.reserve(reg_width_.size());
}

void BatchedCellExecutor::run_batch(bool leaf, std::int64_t rows,
                                    const std::int32_t* words,
                                    const std::int32_t* child_offsets,
                                    const std::int32_t* child_ids,
                                    const float* states, float* out,
                                    Panels& p) const {
  if (rows <= 0) return;
  CORTEX_CHECK(supported_)
      << "run_batch called on an unsupported BatchedCellExecutor";
  // Mirror run_node's branch selection: a model without a leaf program
  // runs its single formula at leaves too (DAG-RNN).
  const std::vector<BatchedOp>& bops =
      (leaf && !leaf_bops_.empty()) ? leaf_bops_ : internal_bops_;
  p.arena.resize(static_cast<std::size_t>(total_width_ * rows));
  p.idx.resize(static_cast<std::size_t>(rows));
  p.written.assign(reg_width_.size(), 0);
  ++p.panels_run;
  p.max_panel_rows = std::max(p.max_panel_rows, rows);
  run_ops(bops, rows, words, child_offsets, child_ids, states, out, p);
}

void BatchedCellExecutor::run_ops(const std::vector<BatchedOp>& bops,
                                  std::int64_t rows,
                                  const std::int32_t* words,
                                  const std::int32_t* child_offsets,
                                  const std::int32_t* child_ids,
                                  const float* states, float* out,
                                  Panels& p) const {
  const std::int64_t sw = cell_.state_width;
  const auto panel = [&](int reg) {
    return p.arena.data() +
           reg_offset_[static_cast<std::size_t>(reg)] * rows;
  };
  const auto in_panel = [&](const BatchedOp& b,
                            std::size_t k) -> const float* {
    const int reg = b.in_regs[k];
    CORTEX_CHECK(p.written[static_cast<std::size_t>(reg)] != 0)
        << "batched op reads register " << reg
        << " before any op of this program wrote it";
    return panel(reg);
  };
  for (const BatchedOp& b : bops) {
    float* outp = b.is_last ? out : panel(b.out_reg);
    switch (b.kind) {
      case CellOpKind::kLeafEmbed: {
        const std::int64_t vocab = b.param.shape().dim(0);
        for (std::int64_t r = 0; r < rows; ++r)
          CORTEX_CHECK(words[r] >= 0 && words[r] < vocab)
              << "word id " << words[r] << " outside embedding table";
        kernels::gather_rows(b.param.data(), words, outp, rows, b.width);
        break;
      }
      case CellOpKind::kLeafConst:
        kernels::fill(outp, b.constant, rows * b.width);
        break;
      case CellOpKind::kSliceChild: {
        for (std::int64_t r = 0; r < rows; ++r) {
          const std::int32_t off0 = child_offsets[r];
          const std::int32_t off1 = child_offsets[r + 1];
          CORTEX_CHECK(b.child < off1 - off0)
              << "cell reads child " << b.child << " but node has "
              << off1 - off0;
          p.idx[static_cast<std::size_t>(r)] =
              child_ids[static_cast<std::size_t>(off0) +
                        static_cast<std::size_t>(b.child)];
        }
        kernels::gather_rows_strided(states + b.offset, sw, p.idx.data(),
                                     outp, rows, b.width);
        break;
      }
      case CellOpKind::kChildSum: {
        kernels::fill(outp, 0.0f, rows * b.width);
        for (std::int64_t r = 0; r < rows; ++r) {
          float* dst = outp + r * b.width;
          for (std::int32_t c = child_offsets[r]; c < child_offsets[r + 1];
               ++c)
            kernels::acc(states +
                             child_ids[static_cast<std::size_t>(c)] * sw +
                             b.offset,
                         dst, b.width);
        }
        break;
      }
      case CellOpKind::kMatVec: {
        // The whole panel in one GEMM: [rows, k] @ [k, m]. Accumulation
        // order over k inside gemm matches gemv's, so every row is
        // bit-identical to the per-node matvec.
        const float* in = in_panel(b, 0);
        kernels::gemm(in, b.param_t.data(), outp, rows, b.k, b.width);
        ++p.gemm_calls;
        break;
      }
      case CellOpKind::kNodeMatVec: {
        // Per-node matrices: no shared weight to batch; run the same
        // per-row gemv the per-node path runs.
        const float* m = in_panel(b, 0);
        const float* x = in_panel(b, 1);
        const std::int64_t w0 =
            reg_width_[static_cast<std::size_t>(b.in_regs[0])];
        const std::int64_t w1 =
            reg_width_[static_cast<std::size_t>(b.in_regs[1])];
        for (std::int64_t r = 0; r < rows; ++r)
          kernels::gemv(m + r * w0, x + r * w1, outp + r * b.width, b.width,
                        b.width);
        break;
      }
      case CellOpKind::kMatStack2: {
        const std::int64_t h = b.param.shape().dim(0);
        p.stacked.resize(static_cast<std::size_t>(2 * h * h));
        const float* in0 = in_panel(b, 0);
        const float* in1 = in_panel(b, 1);
        const std::int64_t w0 =
            reg_width_[static_cast<std::size_t>(b.in_regs[0])];
        const std::int64_t w1 =
            reg_width_[static_cast<std::size_t>(b.in_regs[1])];
        for (std::int64_t r = 0; r < rows; ++r) {
          kernels::copy(in0 + r * w0, p.stacked.data(), h * h);
          kernels::copy(in1 + r * w1, p.stacked.data() + h * h, h * h);
          kernels::gemm(b.param.data(), p.stacked.data(),
                        outp + r * b.width, h, 2 * h, h);
        }
        break;
      }
      case CellOpKind::kEltwise: {
        const float* ins_arr[kMaxEltParams] = {nullptr};
        for (std::size_t k = 0; k < b.in_regs.size(); ++k)
          ins_arr[k] = in_panel(b, k);
        b.compiled.eval_panel(rows, b.width, ins_arr, b.eparams.data(),
                              outp);
        break;
      }
      case CellOpKind::kConcat2: {
        const float* in0 = in_panel(b, 0);
        const float* in1 = in_panel(b, 1);
        const std::int64_t w0 =
            reg_width_[static_cast<std::size_t>(b.in_regs[0])];
        const std::int64_t w1s =
            reg_width_[static_cast<std::size_t>(b.in_regs[1])];
        const std::int64_t w1 = b.width - w0;
        for (std::int64_t r = 0; r < rows; ++r) {
          kernels::copy(in0 + r * w0, outp + r * b.width, w0);
          kernels::copy(in1 + r * w1s, outp + r * b.width + w0, w1);
        }
        break;
      }
    }
    p.written[static_cast<std::size_t>(b.out_reg)] = 1;
  }
}

}  // namespace cortex::models
