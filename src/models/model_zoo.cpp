#include "models/model_zoo.hpp"

#include <algorithm>
#include <cmath>

#include "ra/op.hpp"

namespace cortex::models {

namespace {

using ra::Expr;
using ra::OpRef;

// -- RA expression shorthands -------------------------------------------------

Expr vn() { return ra::var("n"); }
Expr vi() { return ra::var("i"); }
/// Per-node load op[n, i].
Expr at(const OpRef& op) { return ra::load(op->name, {vn(), vi()}); }
/// 1-D parameter load p[i].
Expr p1(const std::string& p) { return ra::load(p, {vi()}); }

/// Concatenation body over the element axis: first `wa` elements from `a`,
/// the rest from `b` (the RA spelling of a concat operator). The first
/// arm's index is clamped with min(i, wa-1): the select only evaluates
/// the taken arm, so this is a semantic no-op, but it keeps the (guarded)
/// load statically in-bounds for the named-dimension checker — composite
/// index expressions are the class §5.1 exempts from direct-var checks.
Expr concat_body(const OpRef& a, std::int64_t wa, const OpRef& b) {
  Expr clamped = ra::binary(ra::BinOp::kMin, vi(), ra::imm(wa - 1));
  return ra::select(ra::lt(vi(), ra::imm(wa)),
                    ra::load(a->name, {vn(), std::move(clamped)}),
                    ra::load(b->name, {vn(), ra::sub(vi(), ra::imm(wa))}));
}

// -- cell-op shorthands -------------------------------------------------------

/// Eltwise inputs are referenced as e0, e1, ... in cell expressions.
Expr e0() { return ra::var("e0"); }
Expr e1() { return ra::var("e1"); }
Expr e2() { return ra::var("e2"); }
/// 1-D param load in a cell eltwise expression: p[i].
Expr cp(const std::string& p) { return ra::load(p, {ra::var("i")}); }

CellOp elt(std::string out, std::int64_t width, std::vector<std::string> ins,
           Expr expr) {
  CellOp op;
  op.kind = CellOpKind::kEltwise;
  op.out = std::move(out);
  op.width = width;
  op.ins = std::move(ins);
  op.expr = std::move(expr);
  return op;
}

CellOp slice(std::string out, int child, std::int64_t offset,
             std::int64_t width) {
  CellOp op;
  op.kind = CellOpKind::kSliceChild;
  op.out = std::move(out);
  op.child = child;
  op.offset = offset;
  op.width = width;
  return op;
}

CellOp csum(std::string out, std::int64_t width, std::int64_t offset = 0) {
  CellOp op;
  op.kind = CellOpKind::kChildSum;
  op.out = std::move(out);
  op.offset = offset;
  op.width = width;
  return op;
}

CellOp mv(std::string out, std::string param, std::string in,
          std::int64_t width) {
  CellOp op;
  op.kind = CellOpKind::kMatVec;
  op.out = std::move(out);
  op.param = std::move(param);
  op.ins = {std::move(in)};
  op.width = width;
  return op;
}

CellOp emb(std::string out, std::string table, std::int64_t width) {
  CellOp op;
  op.kind = CellOpKind::kLeafEmbed;
  op.out = std::move(out);
  op.param = std::move(table);
  op.width = width;
  return op;
}

CellOp cst(std::string out, double value, std::int64_t width) {
  CellOp op;
  op.kind = CellOpKind::kLeafConst;
  op.out = std::move(out);
  op.constant = value;
  op.width = width;
  return op;
}

CellOp cat2(std::string out, std::string a, std::string b,
            std::int64_t width) {
  CellOp op;
  op.kind = CellOpKind::kConcat2;
  op.out = std::move(out);
  op.ins = {std::move(a), std::move(b)};
  op.width = width;
  return op;
}

CellOp node_mv(std::string out, std::string mat_reg, std::string vec_reg,
               std::int64_t width) {
  CellOp op;
  op.kind = CellOpKind::kNodeMatVec;
  op.out = std::move(out);
  op.ins = {std::move(mat_reg), std::move(vec_reg)};
  op.width = width;
  return op;
}

CellOp mat_stack2(std::string out, std::string param, std::string m0,
                  std::string m1, std::int64_t width) {
  CellOp op;
  op.kind = CellOpKind::kMatStack2;
  op.out = std::move(out);
  op.param = std::move(param);
  op.ins = {std::move(m0), std::move(m1)};
  op.width = width;
  return op;
}

/// Builds the shared GRU internal program (TreeGRU / SimpleTreeGRU / the
/// RA variants all share the gate structure; only the h combination
/// differs). `simple` selects h = (1-z)*h' over h = z*hsum + (1-z)*h'.
std::vector<CellOp> gru_internal_ops(std::int64_t h, bool simple) {
  using ra::add;
  using ra::call;
  using ra::mul;
  using ra::sub;
  std::vector<CellOp> ops;
  ops.push_back(csum("hs", h));
  ops.push_back(mv("zb", "Uz", "hs", h));
  ops.push_back(elt("z", h, {"zb"},
                    call(ra::CallFn::kSigmoid, add(e0(), cp("bz")))));
  ops.push_back(mv("rb", "Ur", "hs", h));
  ops.push_back(elt("r", h, {"rb"},
                    call(ra::CallFn::kSigmoid, add(e0(), cp("br")))));
  ops.push_back(elt("rh", h, {"r", "hs"}, mul(e0(), e1())));
  ops.push_back(mv("hb", "Uh", "rh", h));
  ops.push_back(
      elt("hc", h, {"hb"}, call(ra::CallFn::kTanh, add(e0(), cp("bh")))));
  if (simple) {
    // SimpleTreeGRU (§7.4 footnote 4): h = (1 - z) * h'.
    ops.push_back(elt("h", h, {"z", "hc"},
                      mul(sub(ra::fimm(1.0), e0()), e1())));
  } else {
    // h = z * hsum + (1 - z) * h'.
    ops.push_back(elt("h", h, {"z", "hs", "hc"},
                      add(mul(e0(), e1()),
                          mul(sub(ra::fimm(1.0), e0()), e2()))));
  }
  return ops;
}

/// The RA twin of gru_internal_ops; returns the final per-node operator.
OpRef gru_internal_ra(const OpRef& ph, std::int64_t h, bool simple) {
  using ra::add;
  using ra::call;
  using ra::mul;
  using ra::sub;
  OpRef uz = ra::input_tensor("Uz", {h, h});
  OpRef ur = ra::input_tensor("Ur", {h, h});
  OpRef uh = ra::input_tensor("Uh", {h, h});
  OpRef bz = ra::input_tensor("bz", {h});
  OpRef br = ra::input_tensor("br", {h});
  OpRef bh = ra::input_tensor("bh", {h});
  OpRef hs = ra::child_sum("hs", ph, h);
  OpRef zb = ra::matvec("zb", uz, hs);
  OpRef z = ra::eltwise("z", call(ra::CallFn::kSigmoid, add(at(zb), p1("bz"))),
                        {zb, bz}, h);
  OpRef rb = ra::matvec("rb", ur, hs);
  OpRef r = ra::eltwise("r", call(ra::CallFn::kSigmoid, add(at(rb), p1("br"))),
                        {rb, br}, h);
  OpRef rh = ra::eltwise("rh", mul(at(r), at(hs)), {r, hs}, h);
  OpRef hb = ra::matvec("hb", uh, rh);
  OpRef hc = ra::eltwise("hc", call(ra::CallFn::kTanh, add(at(hb), p1("bh"))),
                         {hb, bh}, h);
  if (simple)
    return ra::eltwise("h", mul(sub(ra::fimm(1.0), at(z)), at(hc)), {z, hc},
                       h);
  return ra::eltwise(
      "h", add(mul(at(z), at(hs)), mul(sub(ra::fimm(1.0), at(z)), at(hc))),
      {z, hs, hc}, h);
}

std::vector<std::pair<std::string, std::vector<std::int64_t>>> gru_params(
    std::int64_t h) {
  return {{"Uz", {h, h}}, {"Ur", {h, h}}, {"Uh", {h, h}},
          {"bz", {h}},    {"br", {h}},    {"bh", {h}}};
}

ModelDef make_treegru_impl(std::int64_t h, std::int64_t vocab, bool simple,
                           bool embed_leaves) {
  ModelDef def;
  def.name = embed_leaves ? (simple ? "SimpleTreeGRU-emb" : "TreeGRU-emb")
                          : (simple ? "SimpleTreeGRU" : "TreeGRU");
  def.hidden = h;
  def.vocab = vocab;
  def.param_shapes = gru_params(h);
  if (embed_leaves) def.param_shapes.push_back({"Emb", {vocab, h}});

  def.cell.state_width = h;
  def.cell.num_children = 2;
  def.cell.internal_ops = gru_internal_ops(h, simple);
  def.cell.leaf_ops = embed_leaves
                          ? std::vector<CellOp>{emb("h", "Emb", h)}
                          : std::vector<CellOp>{cst("h", 0.0, h)};

  OpRef ph = ra::placeholder("gru", {h});
  OpRef internal = gru_internal_ra(ph, h, simple);
  OpRef leaf;
  if (embed_leaves) {
    OpRef table = ra::input_tensor("Emb", {vocab, h});
    leaf = ra::embed_lookup("leafe", table, h);
  } else {
    leaf = ra::const_init("leafc", 0.0, h);
  }
  OpRef body = ra::if_then_else("body", ra::is_leaf(vn()), leaf, internal);
  def.model = ra::make_model(def.name, ra::recursion_op(ph, body),
                             linearizer::StructureKind::kTree, 2);

  // The h' gate depends on r (phase 2 reads phase-1 output), so a fused
  // persistent kernel needs two device-wide sync points per batch step
  // (the GRNN GRU structure). Refactoring removes one sync but must
  // rematerialize the z*hsum term across the moved backedge — except in
  // the simple variant, whose h-gate drops that term (Fig. 10c).
  def.sync_points_per_step = 2;
  def.refactor_extra_bytes_per_node =
      simple ? 0 : 2 * h * static_cast<std::int64_t>(sizeof(float));
  return def;
}

ModelDef make_treelstm_impl(std::int64_t h, std::int64_t vocab,
                            bool embed_leaves) {
  using ra::add;
  using ra::call;
  using ra::mul;
  ModelDef def;
  def.name = embed_leaves ? "TreeLSTM-emb" : "TreeLSTM";
  def.hidden = h;
  def.vocab = vocab;
  def.param_shapes = {{"Ui", {h, h}}, {"Uo", {h, h}}, {"Uu", {h, h}},
                      {"Uf", {h, h}}, {"bi", {h}},    {"bo", {h}},
                      {"bu", {h}},    {"bf", {h}}};
  if (embed_leaves) {
    def.param_shapes.push_back({"Emb", {vocab, h}});
    def.param_shapes.push_back({"EmbC", {vocab, h}});
  }

  // State layout: [h (H) ; c (H)].
  def.cell.state_width = 2 * h;
  def.cell.num_children = 2;
  auto& ops = def.cell.internal_ops;
  ops.push_back(csum("hs", h));                 // sum of children h
  ops.push_back(slice("hl", 0, 0, h));          // left child h
  ops.push_back(slice("hr", 1, 0, h));          // right child h
  ops.push_back(slice("cl", 0, h, h));          // left child c
  ops.push_back(slice("cr", 1, h, h));          // right child c
  ops.push_back(mv("ib", "Ui", "hs", h));
  ops.push_back(elt("ig", h, {"ib"},
                    call(ra::CallFn::kSigmoid, add(e0(), cp("bi")))));
  ops.push_back(mv("ob", "Uo", "hs", h));
  ops.push_back(elt("og", h, {"ob"},
                    call(ra::CallFn::kSigmoid, add(e0(), cp("bo")))));
  ops.push_back(mv("ub", "Uu", "hs", h));
  ops.push_back(
      elt("ug", h, {"ub"}, call(ra::CallFn::kTanh, add(e0(), cp("bu")))));
  ops.push_back(mv("flb", "Uf", "hl", h));
  ops.push_back(elt("fl", h, {"flb"},
                    call(ra::CallFn::kSigmoid, add(e0(), cp("bf")))));
  ops.push_back(mv("frb", "Uf", "hr", h));
  ops.push_back(elt("fr", h, {"frb"},
                    call(ra::CallFn::kSigmoid, add(e0(), cp("bf")))));
  // c = i*u + fl*cl + fr*cr
  ops.push_back(elt("c", h, {"ig", "ug", "fl", "cl", "fr", "cr"},
                    add(mul(e0(), e1()),
                        add(mul(e2(), ra::var("e3")),
                            mul(ra::var("e4"), ra::var("e5"))))));
  // hh = o * tanh(c)
  ops.push_back(elt("hh", h, {"og", "c"},
                    mul(e0(), call(ra::CallFn::kTanh, e1()))));
  ops.push_back(cat2("st", "hh", "c", 2 * h));

  if (embed_leaves) {
    def.cell.leaf_ops = {emb("eh", "Emb", h), emb("ec", "EmbC", h),
                         cat2("st", "eh", "ec", 2 * h)};
  } else {
    def.cell.leaf_ops = {cst("st", 0.0, 2 * h)};
  }

  // RA twin.
  OpRef ph = ra::placeholder("lstm", {2 * h});
  OpRef ui = ra::input_tensor("Ui", {h, h});
  OpRef uo = ra::input_tensor("Uo", {h, h});
  OpRef uu = ra::input_tensor("Uu", {h, h});
  OpRef uf = ra::input_tensor("Uf", {h, h});
  OpRef bi = ra::input_tensor("bi", {h});
  OpRef bo = ra::input_tensor("bo", {h});
  OpRef bu = ra::input_tensor("bu", {h});
  OpRef bf = ra::input_tensor("bf", {h});
  OpRef hs = ra::child_sum("hs", ph, h);
  OpRef hl = ra::child_read_slice("hl", ph, 0, 0, h);
  OpRef hr = ra::child_read_slice("hr", ph, 1, 0, h);
  OpRef cl = ra::child_read_slice("cl", ph, 0, h, h);
  OpRef cr = ra::child_read_slice("cr", ph, 1, h, h);
  OpRef ib = ra::matvec("ib", ui, hs);
  OpRef ig = ra::eltwise(
      "ig", call(ra::CallFn::kSigmoid, add(at(ib), p1("bi"))), {ib, bi}, h);
  OpRef ob = ra::matvec("ob", uo, hs);
  OpRef og = ra::eltwise(
      "og", call(ra::CallFn::kSigmoid, add(at(ob), p1("bo"))), {ob, bo}, h);
  OpRef ub = ra::matvec("ub", uu, hs);
  OpRef ug = ra::eltwise("ug", call(ra::CallFn::kTanh, add(at(ub), p1("bu"))),
                         {ub, bu}, h);
  OpRef flb = ra::matvec("flb", uf, hl);
  OpRef fl = ra::eltwise(
      "fl", call(ra::CallFn::kSigmoid, add(at(flb), p1("bf"))), {flb, bf}, h);
  OpRef frb = ra::matvec("frb", uf, hr);
  OpRef fr = ra::eltwise(
      "fr", call(ra::CallFn::kSigmoid, add(at(frb), p1("bf"))), {frb, bf}, h);
  OpRef c = ra::eltwise(
      "c",
      add(mul(at(ig), at(ug)), add(mul(at(fl), at(cl)), mul(at(fr), at(cr)))),
      {ig, ug, fl, cl, fr, cr}, h);
  OpRef hh = ra::eltwise("hh", mul(at(og), call(ra::CallFn::kTanh, at(c))),
                         {og, c}, h);
  OpRef st = ra::eltwise("st", concat_body(hh, h, c), {hh, c}, 2 * h);

  OpRef leaf;
  if (embed_leaves) {
    OpRef te = ra::input_tensor("Emb", {vocab, h});
    OpRef tc = ra::input_tensor("EmbC", {vocab, h});
    OpRef eh = ra::embed_lookup("eh", te, h);
    OpRef ec = ra::embed_lookup("ec", tc, h);
    leaf = ra::eltwise("lst", concat_body(eh, h, ec), {eh, ec}, 2 * h);
  } else {
    leaf = ra::const_init("lst", 0.0, 2 * h);
  }
  OpRef body = ra::if_then_else("body", ra::is_leaf(vn()), leaf, st);
  def.model = ra::make_model(def.name, ra::recursion_op(ph, body),
                             linearizer::StructureKind::kTree, 2);
  def.sync_points_per_step = 1;  // all gates read only children states
  return def;
}

ModelDef make_treefc_impl(std::int64_t h, std::int64_t vocab,
                          bool embed_leaves) {
  using ra::add;
  using ra::call;
  ModelDef def;
  def.name = embed_leaves ? "TreeFC-emb" : "TreeFC";
  def.hidden = h;
  def.vocab = vocab;
  def.param_shapes = {{"W", {h, 2 * h}}, {"b", {h}}};
  if (embed_leaves) def.param_shapes.push_back({"Emb", {vocab, h}});

  def.cell.state_width = h;
  def.cell.num_children = 2;
  def.cell.internal_ops = {
      slice("lh", 0, 0, h),
      slice("rh", 1, 0, h),
      cat2("cc", "lh", "rh", 2 * h),
      mv("mvo", "W", "cc", h),
      elt("h", h, {"mvo"}, call(ra::CallFn::kRelu, add(e0(), cp("b")))),
  };
  def.cell.leaf_ops = embed_leaves
                          ? std::vector<CellOp>{emb("h", "Emb", h)}
                          : std::vector<CellOp>{cst("h", 0.1, h)};

  OpRef ph = ra::placeholder("fc", {h});
  OpRef w = ra::input_tensor("W", {h, 2 * h});
  OpRef b = ra::input_tensor("b", {h});
  OpRef lh = ra::child_read("lh", ph, 0, h);
  OpRef rh = ra::child_read("rh", ph, 1, h);
  OpRef cc = ra::eltwise("cc", concat_body(lh, h, rh), {lh, rh}, 2 * h);
  OpRef mvo = ra::matvec("mvo", w, cc);
  OpRef hh = ra::eltwise(
      "h", call(ra::CallFn::kRelu, add(at(mvo), p1("b"))), {mvo, b}, h);
  OpRef leaf;
  if (embed_leaves) {
    OpRef table = ra::input_tensor("Emb", {vocab, h});
    leaf = ra::embed_lookup("leafe", table, h);
  } else {
    // Uniform non-zero initial state: the §4.3 "hoisted" case.
    leaf = ra::const_init("leafc", 0.1, h);
  }
  OpRef body = ra::if_then_else("body", ra::is_leaf(vn()), leaf, hh);
  def.model = ra::make_model(def.name, ra::recursion_op(ph, body),
                             linearizer::StructureKind::kTree, 2);
  def.sync_points_per_step = 1;
  return def;
}

}  // namespace

ModelDef make_treefc(std::int64_t hidden, std::int64_t vocab) {
  return make_treefc_impl(hidden, vocab, /*embed_leaves=*/false);
}

ModelDef make_treefc_embed(std::int64_t hidden, std::int64_t vocab) {
  return make_treefc_impl(hidden, vocab, /*embed_leaves=*/true);
}

ModelDef make_treegru(std::int64_t hidden, std::int64_t vocab) {
  return make_treegru_impl(hidden, vocab, /*simple=*/false,
                           /*embed_leaves=*/false);
}

ModelDef make_treegru_embed(std::int64_t hidden, std::int64_t vocab) {
  return make_treegru_impl(hidden, vocab, /*simple=*/false,
                           /*embed_leaves=*/true);
}

ModelDef make_simple_treegru(std::int64_t hidden, std::int64_t vocab) {
  return make_treegru_impl(hidden, vocab, /*simple=*/true,
                           /*embed_leaves=*/false);
}

ModelDef make_treelstm(std::int64_t hidden, std::int64_t vocab) {
  return make_treelstm_impl(hidden, vocab, /*embed_leaves=*/false);
}

ModelDef make_treelstm_embed(std::int64_t hidden, std::int64_t vocab) {
  return make_treelstm_impl(hidden, vocab, /*embed_leaves=*/true);
}

ModelDef make_dagrnn(std::int64_t h, std::int64_t vocab) {
  using ra::add;
  using ra::call;
  ModelDef def;
  def.name = "DAG-RNN";
  def.hidden = h;
  def.vocab = vocab;
  def.param_shapes = {{"U", {h, h}}, {"Emb", {vocab, h}}, {"b", {h}}};

  // One formula covers sources and interior nodes: the predecessor sum of
  // a source is empty. No leaf branch => specialization is a no-op, which
  // is exactly the paper's Fig. 10a observation for DAG-RNN.
  def.cell.state_width = h;
  def.cell.num_children = 2;  // grid DAGs have fan-in <= 2
  def.cell.internal_ops = {
      csum("hs", h),
      mv("mvo", "U", "hs", h),
      emb("x", "Emb", h),
      elt("h", h, {"mvo", "x"},
          call(ra::CallFn::kTanh, add(add(e0(), e1()), cp("b")))),
  };
  def.cell.leaf_ops = {};  // same program runs at sources

  OpRef ph = ra::placeholder("dg", {h});
  OpRef u = ra::input_tensor("U", {h, h});
  OpRef table = ra::input_tensor("Emb", {vocab, h});
  OpRef b = ra::input_tensor("b", {h});
  OpRef hs = ra::child_sum("hs", ph, h);
  OpRef mvo = ra::matvec("mvo", u, hs);
  OpRef x = ra::embed_lookup("x", table, h);
  OpRef hh = ra::eltwise(
      "h", call(ra::CallFn::kTanh, add(add(at(mvo), at(x)), p1("b"))),
      {mvo, x, b}, h);
  def.model = ra::make_model(def.name, ra::recursion_op(ph, hh),
                             linearizer::StructureKind::kDag, 8);
  def.sync_points_per_step = 1;
  return def;
}

ModelDef make_mvrnn(std::int64_t h, std::int64_t vocab) {
  using ra::add;
  using ra::call;
  using ra::mul;
  ModelDef def;
  def.name = "MV-RNN";
  def.hidden = h;
  def.vocab = vocab;
  const std::int64_t hh2 = h * h;
  const std::int64_t sw = h + hh2;  // state: [p (H) ; vec(P) (HxH)]
  def.param_shapes = {{"W", {h, 2 * h}},
                      {"WM", {h, 2 * h}},
                      {"b", {h}},
                      {"EmbVec", {vocab, h}},
                      {"EmbMat", {vocab, hh2}}};

  def.cell.state_width = sw;
  def.cell.num_children = 2;
  def.cell.internal_ops = {
      slice("a1", 0, 0, h),   slice("A1", 0, h, hh2),
      slice("a2", 1, 0, h),   slice("A2", 1, h, hh2),
      node_mv("m1", "A2", "a1", h),  // A2 @ a1
      node_mv("m2", "A1", "a2", h),  // A1 @ a2
      cat2("mc", "m1", "m2", 2 * h),
      mv("pm", "W", "mc", h),
      elt("p", h, {"pm"}, call(ra::CallFn::kTanh, add(e0(), cp("b")))),
      mat_stack2("Pm", "WM", "A1", "A2", hh2),
      cat2("st", "p", "Pm", sw),
  };
  def.cell.leaf_ops = {
      emb("ev", "EmbVec", h),
      emb("em", "EmbMat", hh2),
      cat2("st", "ev", "em", sw),
  };

  // RA twin. The per-node matrix lives flattened inside the state, so the
  // matrix-vector products index it with composite (affine) expressions.
  OpRef ph = ra::placeholder("mvr", {sw});
  OpRef w = ra::input_tensor("W", {h, 2 * h});
  OpRef wm = ra::input_tensor("WM", {h, 2 * h});
  OpRef b = ra::input_tensor("b", {h});
  OpRef ev_t = ra::input_tensor("EmbVec", {vocab, h});
  OpRef em_t = ra::input_tensor("EmbMat", {vocab, hh2});
  OpRef a1 = ra::child_read_slice("a1", ph, 0, 0, h);
  OpRef am1 = ra::child_read_slice("A1", ph, 0, h, hh2);
  OpRef a2 = ra::child_read_slice("a2", ph, 1, 0, h);
  OpRef am2 = ra::child_read_slice("A2", ph, 1, h, hh2);
  // m1[n,i] = sum_j A2[n, i*H + j] * a1[n, j]
  auto node_matvec_ra = [&](const std::string& name, const OpRef& m,
                            const OpRef& v) {
    Expr body =
        ra::sum("j", ra::imm(h),
                mul(ra::load(m->name,
                             {vn(), add(mul(vi(), ra::imm(h)), ra::var("j"))}),
                    ra::load(v->name, {vn(), ra::var("j")})));
    return ra::compute(name, {"n", "i"}, {ra::var("N"), ra::imm(h)},
                       std::move(body), {m, v});
  };
  OpRef m1 = node_matvec_ra("m1", am2, a1);
  OpRef m2 = node_matvec_ra("m2", am1, a2);
  OpRef mc = ra::eltwise("mc", concat_body(m1, h, m2), {m1, m2}, 2 * h);
  OpRef pm = ra::matvec("pm", w, mc);
  OpRef p = ra::eltwise("p", call(ra::CallFn::kTanh, add(at(pm), p1("b"))),
                        {pm, b}, h);
  // Pm[n, i] with i = r*H + c: sum_k WM[r,k] * vstack(A1,A2)[k,c].
  {
    Expr r = ra::div(vi(), ra::imm(h));
    Expr c = ra::sub(vi(), mul(ra::div(vi(), ra::imm(h)), ra::imm(h)));
    Expr k = ra::var("k");
    Expr stacked = ra::select(
        ra::lt(k, ra::imm(h)),
        ra::load(am1->name, {vn(), add(mul(k, ra::imm(h)), c)}),
        ra::load(am2->name,
                 {vn(), add(mul(ra::sub(k, ra::imm(h)), ra::imm(h)), c)}));
    Expr body = ra::sum(
        "k", ra::imm(2 * h),
        mul(ra::load("WM", {r, ra::var("k")}), stacked));
    OpRef pmat = ra::compute("Pm", {"n", "i"}, {ra::var("N"), ra::imm(hh2)},
                             std::move(body), {am1, am2, wm});
    OpRef st = ra::eltwise("st", concat_body(p, h, pmat), {p, pmat}, sw);
    OpRef eh = ra::embed_lookup("ev", ev_t, h);
    OpRef em = ra::embed_lookup("em", em_t, hh2);
    OpRef leaf = ra::eltwise("lst", concat_body(eh, h, em), {eh, em}, sw);
    OpRef body_op = ra::if_then_else("body", ra::is_leaf(vn()), leaf, st);
    def.model = ra::make_model(def.name, ra::recursion_op(ph, body_op),
                               linearizer::StructureKind::kTree, 2);
  }
  def.sync_points_per_step = 1;
  return def;
}

ModelDef make_treernn(std::int64_t h, std::int64_t vocab) {
  using ra::add;
  using ra::call;
  ModelDef def;
  def.name = "TreeRNN";
  def.hidden = h;
  def.vocab = vocab;
  def.param_shapes = {
      {"Wl", {h, h}}, {"Wr", {h, h}}, {"b", {h}}, {"Emb", {vocab, h}}};

  def.cell.state_width = h;
  def.cell.num_children = 2;
  def.cell.internal_ops = {
      slice("lh", 0, 0, h),
      slice("rh", 1, 0, h),
      mv("ml", "Wl", "lh", h),
      mv("mr", "Wr", "rh", h),
      elt("h", h, {"ml", "mr"},
          call(ra::CallFn::kTanh, add(add(e0(), e1()), cp("b")))),
  };
  def.cell.leaf_ops = {emb("h", "Emb", h)};

  OpRef ph = ra::placeholder("rnn", {h});
  OpRef wl = ra::input_tensor("Wl", {h, h});
  OpRef wr = ra::input_tensor("Wr", {h, h});
  OpRef b = ra::input_tensor("b", {h});
  OpRef table = ra::input_tensor("Emb", {vocab, h});
  OpRef lh = ra::child_read("lh", ph, 0, h);
  OpRef rh = ra::child_read("rh", ph, 1, h);
  OpRef ml = ra::matvec("ml", wl, lh);
  OpRef mr = ra::matvec("mr", wr, rh);
  OpRef hh = ra::eltwise(
      "h", call(ra::CallFn::kTanh, add(add(at(ml), at(mr)), p1("b"))),
      {ml, mr, b}, h);
  OpRef leaf = ra::embed_lookup("leafe", table, h);
  OpRef body = ra::if_then_else("body", ra::is_leaf(vn()), leaf, hh);
  def.model = ra::make_model(def.name, ra::recursion_op(ph, body),
                             linearizer::StructureKind::kTree, 2);
  // The paper's TreeRNN schedule computes one node per thread block, so
  // unrolled schedules need no extra device-wide barriers (Fig. 10b).
  def.block_local_schedule = true;
  def.sync_points_per_step = 1;
  return def;
}

ModelDef make_treernn_fig1(std::int64_t h, std::int64_t vocab) {
  using ra::add;
  using ra::call;
  ModelDef def;
  def.name = "TreeRNN-fig1";
  def.hidden = h;
  def.vocab = vocab;
  def.param_shapes = {{"Emb", {vocab, h}}};

  def.cell.state_width = h;
  def.cell.num_children = 2;
  def.cell.internal_ops = {
      slice("lh", 0, 0, h),
      slice("rh", 1, 0, h),
      elt("h", h, {"lh", "rh"}, call(ra::CallFn::kTanh, add(e0(), e1()))),
  };
  def.cell.leaf_ops = {emb("h", "Emb", h)};

  // Listing 1, verbatim structure: Emb lookup at leaves, tanh(lh+rh) else.
  OpRef ph = ra::placeholder("rnn", {h});
  OpRef table = ra::input_tensor("Emb", {vocab, h});
  OpRef leaf = ra::embed_lookup("leaf_case", table, h);
  OpRef lh = ra::child_read("lh", ph, 0, h);
  OpRef rh = ra::child_read("rh", ph, 1, h);
  OpRef rec = ra::eltwise("recursive_case",
                          call(ra::CallFn::kTanh, add(at(lh), at(rh))),
                          {lh, rh}, h);
  OpRef body = ra::if_then_else("body", ra::is_leaf(vn()), leaf, rec);
  def.model = ra::make_model(def.name, ra::recursion_op(ph, body),
                             linearizer::StructureKind::kTree, 2);
  def.block_local_schedule = true;
  def.sync_points_per_step = 1;
  return def;
}

ModelDef make_treernn_zeroleaf(std::int64_t h, std::int64_t vocab) {
  ModelDef def = make_treernn(h, vocab);
  def.name = "TreeRNN-zeroleaf";
  def.cell.leaf_ops = {cst("h", 0.0, h)};

  using ra::add;
  using ra::call;
  OpRef ph = ra::placeholder("rnn", {h});
  OpRef wl = ra::input_tensor("Wl", {h, h});
  OpRef wr = ra::input_tensor("Wr", {h, h});
  OpRef b = ra::input_tensor("b", {h});
  OpRef lh = ra::child_read("lh", ph, 0, h);
  OpRef rh = ra::child_read("rh", ph, 1, h);
  OpRef ml = ra::matvec("ml", wl, lh);
  OpRef mr = ra::matvec("mr", wr, rh);
  OpRef hh = ra::eltwise(
      "h", call(ra::CallFn::kTanh, add(add(at(ml), at(mr)), p1("b"))),
      {ml, mr, b}, h);
  OpRef leaf = ra::const_init("leafc", 0.0, h);
  OpRef body = ra::if_then_else("body", ra::is_leaf(vn()), leaf, hh);
  def.model = ra::make_model(def.name, ra::recursion_op(ph, body),
                             linearizer::StructureKind::kTree, 2);
  def.param_shapes = {{"Wl", {h, h}}, {"Wr", {h, h}}, {"b", {h}}};
  return def;
}

namespace {

/// Concat of a per-node op (width wa) with a zero tail, as an RA body.
Expr concat_zero_body(const OpRef& a, std::int64_t wa) {
  Expr clamped = ra::binary(ra::BinOp::kMin, vi(), ra::imm(wa - 1));
  return ra::select(ra::lt(vi(), ra::imm(wa)),
                    ra::load(a->name, {vn(), std::move(clamped)}),
                    ra::fimm(0.0));
}

}  // namespace

ModelDef make_seq_lstm(std::int64_t h, std::int64_t vocab) {
  using ra::add;
  using ra::call;
  using ra::mul;
  ModelDef def;
  def.name = "SeqLSTM";
  def.hidden = h;
  def.vocab = vocab;
  def.param_shapes = {{"Wi", {h, h}}, {"Wf", {h, h}}, {"Wo", {h, h}},
                      {"Wu", {h, h}}, {"Ui", {h, h}}, {"Uf", {h, h}},
                      {"Uo", {h, h}}, {"Uu", {h, h}}, {"bi", {h}},
                      {"bf", {h}},    {"bo", {h}},    {"bu", {h}},
                      {"Emb", {vocab, h}}};

  // Runs over chain trees: left child = previous timestep state [h;c],
  // right child = a leaf holding [x; 0] (the embedded token).
  def.cell.state_width = 2 * h;
  def.cell.num_children = 2;
  auto gate = [&](const std::string& g, const std::string& wx,
                  const std::string& uh, const std::string& bias,
                  ra::CallFn fn) {
    std::vector<CellOp> ops;
    ops.push_back(mv(g + "_x", wx, "x", h));
    ops.push_back(mv(g + "_h", uh, "hp", h));
    ops.push_back(elt(g, h, {g + "_x", g + "_h"},
                      call(fn, add(add(e0(), e1()), cp(bias)))));
    return ops;
  };
  auto& ops = def.cell.internal_ops;
  ops.push_back(slice("hp", 0, 0, h));  // previous h
  ops.push_back(slice("cp", 0, h, h));  // previous c
  ops.push_back(slice("x", 1, 0, h));   // current input (leaf h-slot)
  for (const CellOp& op : gate("ig", "Wi", "Ui", "bi", ra::CallFn::kSigmoid))
    ops.push_back(op);
  for (const CellOp& op : gate("fg", "Wf", "Uf", "bf", ra::CallFn::kSigmoid))
    ops.push_back(op);
  for (const CellOp& op : gate("og", "Wo", "Uo", "bo", ra::CallFn::kSigmoid))
    ops.push_back(op);
  for (const CellOp& op : gate("ug", "Wu", "Uu", "bu", ra::CallFn::kTanh))
    ops.push_back(op);
  ops.push_back(elt("c", h, {"fg", "cp", "ig", "ug"},
                    add(mul(e0(), e1()), mul(e2(), ra::var("e3")))));
  ops.push_back(
      elt("hh", h, {"og", "c"}, mul(e0(), call(ra::CallFn::kTanh, e1()))));
  ops.push_back(cat2("st", "hh", "c", 2 * h));

  def.cell.leaf_ops = {emb("eh", "Emb", h), cst("ec", 0.0, h),
                       cat2("st", "eh", "ec", 2 * h)};
  def.sync_points_per_step = 1;

  // RA twin: sequences are chains — left child is the previous timestep,
  // right child is the leaf carrying the embedded token in its h slot.
  {
    OpRef ph = ra::placeholder("seq", {2 * h});
    std::map<std::string, OpRef> w;
    for (const auto& [name, shape] : def.param_shapes)
      w[name] = ra::input_tensor(name, shape);
    OpRef hp = ra::child_read_slice("hp", ph, 0, 0, h);
    OpRef cp = ra::child_read_slice("cp", ph, 0, h, h);
    OpRef x = ra::child_read_slice("x", ph, 1, 0, h);
    auto gate_ra = [&](const std::string& g, const std::string& wx,
                       const std::string& uh, const std::string& bias,
                       ra::CallFn fn) {
      OpRef gx = ra::matvec(g + "_x", w.at(wx), x);
      OpRef gh = ra::matvec(g + "_h", w.at(uh), hp);
      return ra::eltwise(
          g, call(fn, add(add(at(gx), at(gh)), p1(bias))),
          {gx, gh, w.at(bias)}, h);
    };
    OpRef ig = gate_ra("ig", "Wi", "Ui", "bi", ra::CallFn::kSigmoid);
    OpRef fg = gate_ra("fg", "Wf", "Uf", "bf", ra::CallFn::kSigmoid);
    OpRef og = gate_ra("og", "Wo", "Uo", "bo", ra::CallFn::kSigmoid);
    OpRef ug = gate_ra("ug", "Wu", "Uu", "bu", ra::CallFn::kTanh);
    OpRef c = ra::eltwise(
        "c", add(mul(at(fg), at(cp)), mul(at(ig), at(ug))),
        {fg, cp, ig, ug}, h);
    OpRef hh = ra::eltwise("hh", mul(at(og), call(ra::CallFn::kTanh, at(c))),
                           {og, c}, h);
    OpRef st = ra::eltwise("st", concat_body(hh, h, c), {hh, c}, 2 * h);
    OpRef eh = ra::embed_lookup("eh", w.at("Emb"), h);
    OpRef leaf = ra::eltwise("lst", concat_zero_body(eh, h), {eh}, 2 * h);
    OpRef body = ra::if_then_else("body", ra::is_leaf(vn()), leaf, st);
    def.model = ra::make_model(def.name, ra::recursion_op(ph, body),
                               linearizer::StructureKind::kTree, 2);
  }
  return def;
}

ModelDef make_seq_gru(std::int64_t h, std::int64_t vocab) {
  using ra::add;
  using ra::call;
  using ra::mul;
  using ra::sub;
  ModelDef def;
  def.name = "SeqGRU";
  def.hidden = h;
  def.vocab = vocab;
  def.param_shapes = {{"Wz", {h, h}}, {"Wr", {h, h}}, {"Wh", {h, h}},
                      {"Uz", {h, h}}, {"Ur", {h, h}}, {"Uh", {h, h}},
                      {"bz", {h}},    {"br", {h}},    {"bh", {h}},
                      {"Emb", {vocab, h}}};

  def.cell.state_width = h;
  def.cell.num_children = 2;
  auto& ops = def.cell.internal_ops;
  ops.push_back(slice("hp", 0, 0, h));
  ops.push_back(slice("x", 1, 0, h));
  ops.push_back(mv("z_x", "Wz", "x", h));
  ops.push_back(mv("z_h", "Uz", "hp", h));
  ops.push_back(elt("z", h, {"z_x", "z_h"},
                    call(ra::CallFn::kSigmoid, add(add(e0(), e1()), cp("bz")))));
  ops.push_back(mv("r_x", "Wr", "x", h));
  ops.push_back(mv("r_h", "Ur", "hp", h));
  ops.push_back(elt("r", h, {"r_x", "r_h"},
                    call(ra::CallFn::kSigmoid, add(add(e0(), e1()), cp("br")))));
  ops.push_back(elt("rh", h, {"r", "hp"}, mul(e0(), e1())));
  ops.push_back(mv("h_x", "Wh", "x", h));
  ops.push_back(mv("h_h", "Uh", "rh", h));
  ops.push_back(elt("hc", h, {"h_x", "h_h"},
                    call(ra::CallFn::kTanh, add(add(e0(), e1()), cp("bh")))));
  ops.push_back(elt("h", h, {"z", "hp", "hc"},
                    add(mul(e0(), e1()), mul(sub(ra::fimm(1.0), e0()), e2()))));

  def.cell.leaf_ops = {emb("h", "Emb", h)};
  // Phase 2 (Uh @ (r*h)) reads phase-1 output r: two sync points unless
  // refactored (the GRNN GRU trick the paper reuses, §7.4).
  def.sync_points_per_step = 2;
  def.refactor_extra_bytes_per_node = 0;

  // RA twin over chains: left child = previous step, right = token leaf.
  {
    OpRef ph = ra::placeholder("seq", {h});
    std::map<std::string, OpRef> w;
    for (const auto& [name, shape] : def.param_shapes)
      w[name] = ra::input_tensor(name, shape);
    OpRef hp = ra::child_read("hp", ph, 0, h);
    OpRef x = ra::child_read("x", ph, 1, h);
    auto two_mv = [&](const std::string& g, const std::string& wx,
                      const std::string& uh, const OpRef& hin,
                      const std::string& bias, ra::CallFn fn) {
      OpRef gx = ra::matvec(g + "_x", w.at(wx), x);
      OpRef gh = ra::matvec(g + "_h", w.at(uh), hin);
      return ra::eltwise(g, call(fn, add(add(at(gx), at(gh)), p1(bias))),
                         {gx, gh, w.at(bias)}, h);
    };
    OpRef z = two_mv("z", "Wz", "Uz", hp, "bz", ra::CallFn::kSigmoid);
    OpRef r = two_mv("r", "Wr", "Ur", hp, "br", ra::CallFn::kSigmoid);
    OpRef rh = ra::eltwise("rh", mul(at(r), at(hp)), {r, hp}, h);
    OpRef hc = two_mv("hc", "Wh", "Uh", rh, "bh", ra::CallFn::kTanh);
    OpRef hh = ra::eltwise(
        "h", add(mul(at(z), at(hp)), mul(sub(ra::fimm(1.0), at(z)), at(hc))),
        {z, hp, hc}, h);
    OpRef leaf = ra::embed_lookup("lst", w.at("Emb"), h);
    OpRef body = ra::if_then_else("body", ra::is_leaf(vn()), leaf, hh);
    def.model = ra::make_model(def.name, ra::recursion_op(ph, body),
                               linearizer::StructureKind::kTree, 2);
  }
  return def;
}

void fingerprint(const ModelDef& def, support::FingerprintBuilder& fb) {
  fb.tag('D');
  fb.add(def.name);
  fb.add(def.hidden);
  fb.add(def.vocab);
  fb.add(def.sync_points_per_step);
  fb.add(def.refactor_extra_bytes_per_node);
  fb.add(def.block_local_schedule);
  fingerprint(def.cell, fb);
  fb.add(def.model.has_value());
  if (def.model) ra::fingerprint(*def.model, fb);
  // param_shapes is a keyed lookup table: canonicalize by name so entry
  // order is not part of the key (see the header's field-sensitivity doc).
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> shapes =
      def.param_shapes;
  std::sort(shapes.begin(), shapes.end());
  fb.add(static_cast<std::int64_t>(shapes.size()));
  for (const auto& [name, shape] : shapes) {
    fb.add(name);
    fb.add(static_cast<std::int64_t>(shape.size()));
    for (const std::int64_t d : shape) fb.add(d);
  }
}

}  // namespace cortex::models
