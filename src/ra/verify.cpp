#include "ra/verify.hpp"

#include <functional>

namespace cortex::ra {

namespace {

using support::Diagnostic;
using support::Severity;

/// Walks all subexpressions of e, calling f on each.
void walk(const Expr& e, const std::function<void(const Expr&)>& f) {
  if (!e) return;
  f(e);
  for (const Expr& a : e->args) walk(a, f);
}

/// P.1: control-flow conditions may depend only on the structure
/// (isleaf / num_children of the node variable), never on tensor data.
void check_cond_structural(const Expr& cond, const std::string& op,
                           std::vector<Diagnostic>& diags) {
  walk(cond, [&](const Expr& e) {
    if (e->kind == ExprKind::kLoad)
      diags.push_back({Severity::kError, "property", "op(" + op + ")",
                       "condition reads tensor '" + e->name +
                           "': control flow depends on computed data "
                           "(violates P.1)"});
    if (e->kind == ExprKind::kWordOf)
      diags.push_back({Severity::kError, "property", "op(" + op + ")",
                       "condition reads leaf word data (violates P.1)"});
  });
}

/// P.2/P.3: placeholder reads must be ph[child(n, k), ...] — results of
/// direct-child recursive calls only. Reading ph[n] would consume the
/// node's own (not yet computed) result; reading ph[child(child(n,_),_)]
/// would skip a recursion level; indexing a child by a data-dependent
/// expression would violate P.1.
void check_placeholder_reads(const Expr& body, const std::string& ph_name,
                             const std::string& op,
                             std::vector<Diagnostic>& diags) {
  walk(body, [&](const Expr& e) {
    if (e->kind != ExprKind::kLoad || e->name != ph_name) return;
    if (e->args.empty()) {
      diags.push_back({Severity::kError, "property", "op(" + op + ")",
                       "placeholder read without node index"});
      return;
    }
    const Expr& node_idx = e->args[0];
    if (node_idx->kind != ExprKind::kChild) {
      diags.push_back({Severity::kError, "property", "op(" + op + ")",
                       "placeholder '" + ph_name + "' read at '" +
                           to_string(node_idx) +
                           "', not at a direct child (violates P.2: "
                           "recursive-call results must come from "
                           "children)"});
      return;
    }
    if (node_idx->args[0]->kind != ExprKind::kVar) {
      diags.push_back({Severity::kError, "property", "op(" + op + ")",
                       "placeholder indexed by nested child access '" +
                           to_string(node_idx) +
                           "' (violates P.3: only direct children may be "
                           "consumed)"});
      return;
    }
    // The child ordinal must itself be structural (constant or the
    // reduction axis over num_children).
    walk(node_idx->args[1], [&](const Expr& k) {
      if (k->kind == ExprKind::kLoad)
        diags.push_back({Severity::kError, "property", "op(" + op + ")",
                         "child ordinal depends on tensor data "
                         "(violates P.1)"});
    });
  });
}

}  // namespace

VerifyResult verify_properties(const Model& model) {
  VerifyResult r;
  const std::string ph = model.recursion->placeholder->name;
  for (const OpRef& op : model.topo_ops()) {
    if (op->tag == OpTag::kIfThenElse)
      check_cond_structural(op->cond, op->name, r.diagnostics);
    if (op->tag == OpTag::kCompute && op->body)
      check_placeholder_reads(op->body, ph, op->name, r.diagnostics);
  }
  if (!r.diagnostics.empty()) {
    r.ok = false;
    const Diagnostic& first = r.diagnostics.front();
    r.violation = "op '" +
                  first.path.substr(3, first.path.size() - 4) + "': " +
                  first.message;
  }
  return r;
}

void verify_or_throw(const Model& model) {
  const VerifyResult r = verify_properties(model);
  CORTEX_CHECK(r.ok) << "model '" << model.name
                     << "' fails recursive-lowering preconditions: "
                     << support::format(r.diagnostics);
}

}  // namespace cortex::ra
