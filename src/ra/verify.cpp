#include "ra/verify.hpp"

#include <functional>

namespace cortex::ra {

namespace {

/// Walks all subexpressions of e, calling f on each.
void walk(const Expr& e, const std::function<void(const Expr&)>& f) {
  if (!e) return;
  f(e);
  for (const Expr& a : e->args) walk(a, f);
}

/// P.1: control-flow conditions may depend only on the structure
/// (isleaf / num_children of the node variable), never on tensor data.
bool cond_is_structural(const Expr& cond, std::string& why) {
  bool ok = true;
  walk(cond, [&](const Expr& e) {
    if (e->kind == ExprKind::kLoad) {
      ok = false;
      why = "condition reads tensor '" + e->name +
            "': control flow depends on computed data (violates P.1)";
    }
    if (e->kind == ExprKind::kWordOf) {
      ok = false;
      why = "condition reads leaf word data (violates P.1)";
    }
  });
  return ok;
}

/// P.2/P.3: placeholder reads must be ph[child(n, k), ...] — results of
/// direct-child recursive calls only. Reading ph[n] would consume the
/// node's own (not yet computed) result; reading ph[child(child(n,_),_)]
/// would skip a recursion level; indexing a child by a data-dependent
/// expression would violate P.1.
bool placeholder_reads_ok(const Expr& body, const std::string& ph_name,
                          std::string& why) {
  bool ok = true;
  walk(body, [&](const Expr& e) {
    if (e->kind != ExprKind::kLoad || e->name != ph_name) return;
    if (e->args.empty()) {
      ok = false;
      why = "placeholder read without node index";
      return;
    }
    const Expr& node_idx = e->args[0];
    if (node_idx->kind != ExprKind::kChild) {
      ok = false;
      why = "placeholder '" + ph_name + "' read at '" +
            to_string(node_idx) +
            "', not at a direct child (violates P.2: recursive-call "
            "results must come from children)";
      return;
    }
    if (node_idx->args[0]->kind != ExprKind::kVar) {
      ok = false;
      why = "placeholder indexed by nested child access '" +
            to_string(node_idx) +
            "' (violates P.3: only direct children may be consumed)";
      return;
    }
    // The child ordinal must itself be structural (constant or the
    // reduction axis over num_children).
    walk(node_idx->args[1], [&](const Expr& k) {
      if (k->kind == ExprKind::kLoad) {
        ok = false;
        why = "child ordinal depends on tensor data (violates P.1)";
      }
    });
  });
  return ok;
}

}  // namespace

VerifyResult verify_properties(const Model& model) {
  VerifyResult r;
  const std::string ph = model.recursion->placeholder->name;
  for (const OpRef& op : model.topo_ops()) {
    if (op->tag == OpTag::kIfThenElse) {
      std::string why;
      if (!cond_is_structural(op->cond, why))
        return {false, "op '" + op->name + "': " + why};
    }
    if (op->tag == OpTag::kCompute && op->body) {
      std::string why;
      if (!placeholder_reads_ok(op->body, ph, why))
        return {false, "op '" + op->name + "': " + why};
    }
  }
  return r;
}

void verify_or_throw(const Model& model) {
  const VerifyResult r = verify_properties(model);
  CORTEX_CHECK(r.ok) << "model '" << model.name
                     << "' fails recursive-lowering preconditions: "
                     << r.violation;
}

}  // namespace cortex::ra
