#pragma once
// Recursion scheduling primitives (§3.1) plus the ILIR-level optimization
// knobs (§5, §7.3): everything the paper exposes as a schedule, collected
// into one validated object consumed by lowering and the execution engine.

#include <cstdint>
#include <string>

#include "linearizer/linearizer.hpp"
#include "support/fingerprint.hpp"

namespace cortex::ra {

struct Model;

/// How aggressively operators are fused into kernels (Fig. 10a's axis).
enum class FusionLevel {
  kNone,     ///< one kernel launch per operator per batch (vendor-library
             ///< style granularity)
  kMaximal,  ///< all operators of a batch step fused into one kernel
};

/// Schedule for a recursive model. Defaults reproduce the paper's
/// best-performing configuration for tree models.
struct Schedule {
  // -- recursion scheduling primitives (§3.1) --------------------------------
  /// dynamic_batch(rnn): batch independent nodes, process wavefronts.
  bool dynamic_batching = true;
  /// specialize(isleaf(n)): split leaf/internal loop nests; enables
  /// hoisting + constant propagation (§4.3). When false, the lowered code
  /// carries a conditional operator (§5.2) executed per node.
  bool specialize_leaves = true;
  /// Recursion unrolling depth (1 = no unrolling). Only trees/sequences
  /// (§3.1: repeated computation on DAGs). Unrolling moves a node's
  /// computation next to its children's, enabling on-chip reuse, but on
  /// batched schedules multiplies global barriers (Fig. 11).
  std::int64_t unroll_depth = 1;
  /// Recursive refactoring: move the recursion backedge so sibling
  /// computations fuse (Fig. 4). Only trees/sequences.
  bool refactor = false;

  // -- ILIR / codegen-level knobs --------------------------------------------
  FusionLevel fusion = FusionLevel::kMaximal;
  /// Model persistence: keep weights resident in on-chip memory across
  /// batch steps (GRNN/PersistentRNN-style).
  bool persistence = true;
  /// Dense indexing of scratchpad intermediates (§5.1, Fig. 5).
  bool dense_intermediates = true;
  /// Loop peeling of variable-bound loops (§A.5).
  bool loop_peeling = true;
  /// Use the improved barrier-insertion pass (§A.4). When false, the
  /// conservative TVM-style pass places barriers in the innermost loop.
  bool improved_barrier_placement = true;
  /// Lock-free (vs lock-based) device-wide barrier (§7.2, Fig. 9).
  bool lock_free_barrier = false;

  /// The paper's Cavs-comparison configuration (§7.2): specialization off.
  static Schedule cavs_comparable() {
    Schedule s;
    s.specialize_leaves = false;
    return s;
  }
  /// Everything off: the no-optimization baseline of Fig. 10a.
  static Schedule unoptimized() {
    Schedule s;
    s.fusion = FusionLevel::kNone;
    s.specialize_leaves = false;
    s.persistence = false;
    return s;
  }
};

/// Field-wise equality: the schedule is plain data, and every field is
/// compilation-relevant.
bool operator==(const Schedule& a, const Schedule& b);
bool operator!=(const Schedule& a, const Schedule& b);

/// Appends every schedule field to the fingerprint. All fields are
/// included — changing any knob changes the plan-cache key, because each
/// one alters lowering, the optimization passes, or the launch plan.
void fingerprint(const Schedule& s, support::FingerprintBuilder& fb);

/// Validates a schedule against a model; throws cortex::Error on illegal
/// combinations (unroll/refactor on DAGs — §3.1; unroll with persistence —
/// the Appendix-D register-pressure limit).
void validate_schedule(const Model& model, const Schedule& schedule);

/// Human-readable one-liner for bench output.
std::string to_string(const Schedule& s);

}  // namespace cortex::ra
