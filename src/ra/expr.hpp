#pragma once
// Expression AST shared by the Recursive API (§3) and the ILIR (§5).
//
// The RA expresses each operator as a loop nest whose body is one of these
// expressions (Listing 1); RA lowering rewrites structure accessors
// (n.left, n.right, words[n], isleaf(n)) into *uninterpreted functions* of
// loop variables (§5.1, after Strout et al.'s sparse polyhedral framework),
// which at runtime are bound to the linearizer's arrays.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/fingerprint.hpp"
#include "support/logging.hpp"

namespace cortex::ra {

enum class DType { kFloat, kInt };

enum class ExprKind {
  kFloatImm,  ///< float literal
  kIntImm,    ///< integer literal
  kVar,       ///< loop / index variable
  kBinary,    ///< arithmetic / comparison
  kCall,      ///< intrinsic call (tanh, sigmoid, relu, exp)
  kLoad,      ///< tensor element read: buffer[indices...]
  kSum,       ///< reduction: sum over a named axis of a body expression
  kChild,     ///< uninterpreted fn: id of the k-th child of a node
  kWordOf,    ///< uninterpreted fn: word id attached to a node
  kNumChildren,  ///< uninterpreted fn: child count of a node
  kIsLeaf,    ///< structure predicate (1 if node is a leaf)
  kSelect,    ///< ternary select(cond, then, else)
};

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMax,
  kMin,
  kLt,  ///< a < b -> 0/1
  kGe,  ///< a >= b -> 0/1
  kEq,  ///< a == b -> 0/1
};

enum class CallFn { kTanh, kSigmoid, kRelu, kExp };

struct ExprNode;
/// Immutable, shared expression handle.
using Expr = std::shared_ptr<const ExprNode>;

/// One AST node. Fields are used according to `kind`; factory functions
/// below are the only intended constructors.
struct ExprNode {
  ExprKind kind;
  DType dtype = DType::kFloat;

  double fimm = 0.0;         // kFloatImm
  std::int64_t iimm = 0;     // kIntImm
  std::string name{};        // kVar: variable; kLoad: buffer; kSum: axis
  BinOp bin = BinOp::kAdd;   // kBinary
  CallFn fn = CallFn::kTanh; // kCall
  std::vector<Expr> args{};  // operands (see factories for layout)
};

// -- factories ---------------------------------------------------------------

Expr fimm(double v);
Expr imm(std::int64_t v);
Expr var(std::string name, DType dtype = DType::kInt);
Expr binary(BinOp op, Expr a, Expr b);
Expr add(Expr a, Expr b);
Expr sub(Expr a, Expr b);
Expr mul(Expr a, Expr b);
Expr div(Expr a, Expr b);
Expr lt(Expr a, Expr b);
Expr ge(Expr a, Expr b);
Expr eq(Expr a, Expr b);
Expr call(CallFn fn, Expr a);
/// buffer[indices...]
Expr load(std::string buffer, std::vector<Expr> indices);
/// sum_{axis in [0, extent)} body
Expr sum(std::string axis, Expr extent, Expr body);
/// Uninterpreted: id of child `k` of node `node` (k=0 left, k=1 right).
Expr child(Expr node, std::int64_t k);
/// Uninterpreted: id of child `k` of node `node`, with a variable index
/// (used by child-sum reductions over num_children(n)).
Expr child_at(Expr node, Expr k);
/// Uninterpreted: word id of node.
Expr word_of(Expr node);
/// Uninterpreted: number of children of node.
Expr num_children(Expr node);
/// Structure predicate: is `node` a leaf?
Expr is_leaf(Expr node);
Expr select(Expr cond, Expr then_e, Expr else_e);

// -- utilities ---------------------------------------------------------------

/// Pretty-prints an expression ("tanh(lh[n,i] + rh[n,i])").
std::string to_string(const Expr& e);

/// True if the two expressions are structurally identical.
bool struct_equal(const Expr& a, const Expr& b);

/// Appends a canonical structural encoding of `e` (kind, dtype, payload,
/// operands, recursively). Consistent with struct_equal: structurally
/// equal expressions encode identically regardless of subexpression
/// sharing, and any structural difference changes the encoding.
void fingerprint(const Expr& e, support::FingerprintBuilder& fb);

/// Substitutes occurrences of variable `name` with `replacement`.
Expr substitute(const Expr& e, const std::string& name,
                const Expr& replacement);

/// Collects the names of all buffers Load-ed by `e` (deduplicated,
/// in first-occurrence order).
std::vector<std::string> collect_loads(const Expr& e);

/// True if any subexpression depends on variable `name`.
bool uses_var(const Expr& e, const std::string& name);

/// True if the expression contains structure accessors (kChild, kWordOf,
/// kIsLeaf, kNumChildren) — i.e. indirect accesses after lowering.
bool has_structure_access(const Expr& e);

}  // namespace cortex::ra
