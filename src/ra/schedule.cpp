#include "ra/schedule.hpp"

#include <sstream>

#include "ra/model.hpp"

namespace cortex::ra {

void validate_schedule(const Model& model, const Schedule& s) {
  CORTEX_CHECK(s.unroll_depth >= 1)
      << "unroll_depth must be >= 1, got " << s.unroll_depth;
  if (model.kind == linearizer::StructureKind::kDag) {
    // §3.1: unrolling and refactoring would duplicate work for nodes with
    // multiple parents, so they are only supported for trees/sequences.
    CORTEX_CHECK(s.unroll_depth == 1)
        << "recursion unrolling is unsupported for DAG models ("
        << model.name << ")";
    CORTEX_CHECK(!s.refactor)
        << "recursive refactoring is unsupported for DAG models ("
        << model.name << ")";
  }
  // Appendix D: unrolled recursion plus register-persisted weights exceed
  // the register budget; the paper found persistence must be dropped.
  CORTEX_CHECK(!(s.unroll_depth > 1 && s.persistence))
      << "register pressure: recursion unrolling precludes model "
         "persistence (paper Appendix D); disable one of them";
}

std::string to_string(const Schedule& s) {
  std::ostringstream os;
  os << "{batch=" << (s.dynamic_batching ? "on" : "off")
     << " specialize=" << (s.specialize_leaves ? "on" : "off")
     << " unroll=" << s.unroll_depth
     << " refactor=" << (s.refactor ? "on" : "off") << " fusion="
     << (s.fusion == FusionLevel::kMaximal ? "maximal" : "none")
     << " persist=" << (s.persistence ? "on" : "off") << "}";
  return os.str();
}

}  // namespace cortex::ra
