#include "ra/schedule.hpp"

#include <sstream>

#include "ra/model.hpp"

namespace cortex::ra {

bool operator==(const Schedule& a, const Schedule& b) {
  return a.dynamic_batching == b.dynamic_batching &&
         a.specialize_leaves == b.specialize_leaves &&
         a.unroll_depth == b.unroll_depth && a.refactor == b.refactor &&
         a.fusion == b.fusion && a.persistence == b.persistence &&
         a.dense_intermediates == b.dense_intermediates &&
         a.loop_peeling == b.loop_peeling &&
         a.improved_barrier_placement == b.improved_barrier_placement &&
         a.lock_free_barrier == b.lock_free_barrier;
}

bool operator!=(const Schedule& a, const Schedule& b) { return !(a == b); }

void fingerprint(const Schedule& s, support::FingerprintBuilder& fb) {
  fb.tag('S');
  fb.add(s.dynamic_batching);
  fb.add(s.specialize_leaves);
  fb.add(s.unroll_depth);
  fb.add(s.refactor);
  fb.add(static_cast<std::int64_t>(s.fusion));
  fb.add(s.persistence);
  fb.add(s.dense_intermediates);
  fb.add(s.loop_peeling);
  fb.add(s.improved_barrier_placement);
  fb.add(s.lock_free_barrier);
}

void validate_schedule(const Model& model, const Schedule& s) {
  CORTEX_CHECK(s.unroll_depth >= 1)
      << "unroll_depth must be >= 1, got " << s.unroll_depth;
  if (model.kind == linearizer::StructureKind::kDag) {
    // §3.1: unrolling and refactoring would duplicate work for nodes with
    // multiple parents, so they are only supported for trees/sequences.
    CORTEX_CHECK(s.unroll_depth == 1)
        << "recursion unrolling is unsupported for DAG models ("
        << model.name << ")";
    CORTEX_CHECK(!s.refactor)
        << "recursive refactoring is unsupported for DAG models ("
        << model.name << ")";
  }
  // Appendix D: unrolled recursion plus register-persisted weights exceed
  // the register budget; the paper found persistence must be dropped.
  CORTEX_CHECK(!(s.unroll_depth > 1 && s.persistence))
      << "register pressure: recursion unrolling precludes model "
         "persistence (paper Appendix D); disable one of them";
}

std::string to_string(const Schedule& s) {
  std::ostringstream os;
  os << "{batch=" << (s.dynamic_batching ? "on" : "off")
     << " specialize=" << (s.specialize_leaves ? "on" : "off")
     << " unroll=" << s.unroll_depth
     << " refactor=" << (s.refactor ? "on" : "off") << " fusion="
     << (s.fusion == FusionLevel::kMaximal ? "maximal" : "none")
     << " persist=" << (s.persistence ? "on" : "off") << "}";
  return os.str();
}

}  // namespace cortex::ra
