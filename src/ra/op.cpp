#include "ra/op.hpp"

#include <sstream>
#include <unordered_map>

namespace cortex::ra {

bool Op::per_node() const {
  return !axes.empty() && axes.front() == "n";
}

std::int64_t Op::inner_elems() const {
  CORTEX_CHECK(per_node()) << "inner_elems on non-per-node op " << name;
  std::int64_t prod = 1;
  for (std::size_t i = 1; i < extents.size(); ++i) {
    CORTEX_CHECK(extents[i]->kind == ExprKind::kIntImm)
        << "non-constant inner extent on op " << name;
    prod *= extents[i]->iimm;
  }
  return prod;
}

OpRef input_tensor(std::string name, std::vector<std::int64_t> shape) {
  auto op = std::make_shared<Op>();
  op->tag = OpTag::kInput;
  op->name = std::move(name);
  op->input_shape = std::move(shape);
  return op;
}

OpRef placeholder(std::string name, std::vector<std::int64_t> inner_shape) {
  auto op = std::make_shared<Op>();
  op->tag = OpTag::kPlaceholder;
  op->name = std::move(name);
  op->input_shape = std::move(inner_shape);
  op->axes = {"n", "i"};
  std::int64_t prod = 1;
  for (auto d : op->input_shape) prod *= d;
  op->extents = {var("N"), imm(prod)};
  return op;
}

OpRef compute(std::string name, std::vector<std::string> axes,
              std::vector<Expr> extents, Expr body,
              std::vector<OpRef> inputs) {
  CORTEX_CHECK(axes.size() == extents.size())
      << "compute " << name << ": axes/extents size mismatch";
  CORTEX_CHECK(body != nullptr) << "compute " << name << ": null body";
  auto op = std::make_shared<Op>();
  op->tag = OpTag::kCompute;
  op->pattern = ComputePattern::kOpaque;
  op->name = std::move(name);
  op->axes = std::move(axes);
  op->extents = std::move(extents);
  op->body = std::move(body);
  op->inputs = std::move(inputs);
  return op;
}

OpRef embed_lookup(std::string name, OpRef table, std::int64_t width) {
  CORTEX_CHECK(table && table->tag == OpTag::kInput &&
               table->input_shape.size() == 2 &&
               table->input_shape[1] == width)
      << "embed_lookup needs an input table of shape (V," << width << ")";
  Expr body = load(table->name, {word_of(var("n")), var("i")});
  OpRef op = compute(std::move(name), {"n", "i"}, {var("N"), imm(width)},
                     std::move(body), {table});
  op->pattern = ComputePattern::kEmbedLookup;
  return op;
}

OpRef child_read(std::string name, OpRef ph, std::int64_t k,
                 std::int64_t width) {
  return child_read_slice(std::move(name), std::move(ph), k, 0, width);
}

OpRef child_read_slice(std::string name, OpRef ph, std::int64_t k,
                       std::int64_t offset, std::int64_t width) {
  CORTEX_CHECK(ph && ph->tag == OpTag::kPlaceholder)
      << "child_read must read a recursion placeholder";
  CORTEX_CHECK(offset >= 0) << "negative slice offset";
  Expr idx = offset == 0 ? var("i") : add(var("i"), imm(offset));
  Expr body = load(ph->name, {child(var("n"), k), std::move(idx)});
  OpRef op = compute(std::move(name), {"n", "i"}, {var("N"), imm(width)},
                     std::move(body), {ph});
  op->pattern = ComputePattern::kChildRead;
  return op;
}

OpRef child_sum(std::string name, OpRef ph, std::int64_t width) {
  CORTEX_CHECK(ph && ph->tag == OpTag::kPlaceholder)
      << "child_sum must read a recursion placeholder";
  // sum_{k in [0, num_children(n))} ph[child(n,k), i]
  Expr body = sum("k", num_children(var("n")),
                  load(ph->name, {child_at(var("n"), var("k")), var("i")}));
  OpRef op = compute(std::move(name), {"n", "i"}, {var("N"), imm(width)},
                     std::move(body), {ph});
  op->pattern = ComputePattern::kChildSum;
  return op;
}

OpRef matvec(std::string name, OpRef w, OpRef in) {
  CORTEX_CHECK(w && w->tag == OpTag::kInput && w->input_shape.size() == 2)
      << "matvec weight must be a 2-D input tensor";
  CORTEX_CHECK(in && in->per_node()) << "matvec input must be per-node";
  const std::int64_t m = w->input_shape[0];
  const std::int64_t k = w->input_shape[1];
  CORTEX_CHECK(in->inner_elems() == k)
      << "matvec " << name << ": W is (" << m << "," << k << ") but input "
      << in->name << " has width " << in->inner_elems();
  Expr body = sum("j", imm(k),
                  mul(load(w->name, {var("i"), var("j")}),
                      load(in->name, {var("n"), var("j")})));
  OpRef op = compute(std::move(name), {"n", "i"}, {var("N"), imm(m)},
                     std::move(body), {w, in});
  op->pattern = ComputePattern::kMatVec;
  return op;
}

OpRef eltwise(std::string name, Expr body, std::vector<OpRef> inputs,
              std::int64_t width) {
  for (const auto& in : inputs)
    CORTEX_CHECK(in != nullptr) << "eltwise " << name << ": null input";
  OpRef op = compute(std::move(name), {"n", "i"}, {var("N"), imm(width)},
                     std::move(body), std::move(inputs));
  op->pattern = ComputePattern::kEltwise;
  return op;
}

OpRef const_init(std::string name, double value, std::int64_t width) {
  OpRef op = compute(std::move(name), {"n", "i"}, {var("N"), imm(width)},
                     fimm(value), {});
  op->pattern = ComputePattern::kConstInit;
  return op;
}

OpRef if_then_else(std::string name, Expr cond, OpRef then_op,
                   OpRef else_op) {
  CORTEX_CHECK(cond && then_op && else_op) << "if_then_else: null arg";
  CORTEX_CHECK(then_op->per_node() && else_op->per_node())
      << "if_then_else branches must be per-node operators";
  CORTEX_CHECK(then_op->inner_elems() == else_op->inner_elems())
      << "if_then_else branch widths differ";
  auto op = std::make_shared<Op>();
  op->tag = OpTag::kIfThenElse;
  op->name = std::move(name);
  op->axes = {"n", "i"};
  op->extents = {var("N"), imm(then_op->inner_elems())};
  op->cond = std::move(cond);
  op->then_op = std::move(then_op);
  op->else_op = std::move(else_op);
  op->inputs = {op->then_op, op->else_op};
  return op;
}

OpRef recursion_op(OpRef ph, OpRef body) {
  CORTEX_CHECK(ph && ph->tag == OpTag::kPlaceholder)
      << "recursion_op needs a placeholder";
  CORTEX_CHECK(body && body->per_node()) << "recursion body must be per-node";
  auto op = std::make_shared<Op>();
  op->tag = OpTag::kRecursion;
  op->name = ph->name + "_rec";
  op->axes = body->axes;
  op->extents = body->extents;
  op->placeholder = std::move(ph);
  op->recursion_body = std::move(body);
  op->inputs = {op->recursion_body};
  return op;
}

std::string to_string(const OpRef& op) {
  CORTEX_CHECK(op != nullptr) << "to_string(null op)";
  std::ostringstream os;
  os << op->name;
  if (op->tag == OpTag::kInput) {
    os << " = input(";
    for (std::size_t i = 0; i < op->input_shape.size(); ++i)
      os << (i ? "," : "") << op->input_shape[i];
    os << ")";
    return os.str();
  }
  os << "[";
  for (std::size_t i = 0; i < op->axes.size(); ++i)
    os << (i ? "," : "") << op->axes[i];
  os << "]";
  if (op->tag == OpTag::kPlaceholder) return os.str() + " = placeholder";
  if (op->tag == OpTag::kIfThenElse)
    return os.str() + " = if " + to_string(op->cond) + " then " +
           op->then_op->name + " else " + op->else_op->name;
  if (op->tag == OpTag::kRecursion)
    return os.str() + " = recursion(" + op->placeholder->name + " := " +
           op->recursion_body->name + ")";
  os << " = " << to_string(op->body);
  return os.str();
}

namespace {
void fingerprint_op(const OpRef& op,
                    std::unordered_map<const Op*, std::int64_t>& ids,
                    support::FingerprintBuilder& fb) {
  if (!op) {
    fb.tag('0');
    return;
  }
  const auto it = ids.find(op.get());
  if (it != ids.end()) {
    // Back-reference: the same operator object, by first-visit number.
    fb.tag('R');
    fb.add(it->second);
    return;
  }
  ids.emplace(op.get(), static_cast<std::int64_t>(ids.size()));
  fb.tag('O');
  fb.small(static_cast<std::uint8_t>(op->tag));
  fb.small(static_cast<std::uint8_t>(op->pattern));
  fb.add_short(op->name);
  fb.count(op->axes.size());
  for (const std::string& a : op->axes) fb.add_short(a);
  fb.count(op->extents.size());
  for (const Expr& e : op->extents) fingerprint(e, fb);
  fingerprint(op->body, fb);
  fb.count(op->input_shape.size());
  for (const std::int64_t d : op->input_shape) fb.add(d);
  fingerprint(op->cond, fb);
  fingerprint_op(op->then_op, ids, fb);
  fingerprint_op(op->else_op, ids, fb);
  fingerprint_op(op->placeholder, ids, fb);
  fingerprint_op(op->recursion_body, ids, fb);
  fb.count(op->inputs.size());
  for (const OpRef& in : op->inputs) fingerprint_op(in, ids, fb);
}
}  // namespace

void fingerprint(const OpRef& op, support::FingerprintBuilder& fb) {
  std::unordered_map<const Op*, std::int64_t> ids;
  fingerprint_op(op, ids, fb);
}

}  // namespace cortex::ra
