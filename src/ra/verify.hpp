#pragma once
// Verifier for the paper's §2 properties, which are what make lowering
// recursion to loops legal:
//   P.1 all control flow depends only on data-structure connectivity,
//   P.2 all recursive calls happen before any tensor computation,
//   P.3 recursive calls to children are mutually independent.
// The RA's expression language makes most violations unrepresentable by
// construction; this pass checks the residual conditions on an op DAG and
// reports every property a model would violate, on the same
// support::Diagnostic surface as the ILIR static verifier.

#include <string>
#include <vector>

#include "ra/model.hpp"
#include "support/diagnostic.hpp"

namespace cortex::ra {

/// Result of verifying a model against P.1–P.3.
struct VerifyResult {
  bool ok = true;
  std::string violation;  ///< first violation; empty when ok
  /// Every violation found, one "property" diagnostic per offending op
  /// expression (not just the first).
  std::vector<support::Diagnostic> diagnostics;
};

/// Checks the model. Collects ALL violated properties across all ops;
/// models that pass are lowerable to the ILIR.
VerifyResult verify_properties(const Model& model);

/// Throwing wrapper used by the compilation entry points; lists every
/// violation in the raised error.
void verify_or_throw(const Model& model);

}  // namespace cortex::ra
