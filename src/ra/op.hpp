#pragma once
// Recursive API operators (§3): the model is a DAG of operators, each
// specified as a loop nest producing a tensor (Listing 1). Structural
// helper constructors additionally tag operators with a recognized
// pattern (matvec, elementwise, ...) that the execution engine uses to
// dispatch onto the kernel library; the generic AST remains the ground
// truth that the ILIR evaluator interprets.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ra/expr.hpp"

namespace cortex::ra {

/// Recognized operator patterns (execution fast path). kOpaque means
/// "interpret the AST"; everything still lowers and evaluates correctly.
enum class OpTag {
  kInput,        ///< model weight / embedding table (global tensor)
  kPlaceholder,  ///< result-of-recursive-call placeholder (Listing 1 l.9)
  kCompute,      ///< generic loop-nest operator
  kIfThenElse,   ///< conditional operator over two sub-graphs (§5.2)
  kRecursion,    ///< ties placeholder to body (recursion_op, l.22)
};

/// Recognized compute patterns for engine dispatch.
enum class ComputePattern {
  kOpaque,       ///< no special structure; AST-interpreted
  kEmbedLookup,  ///< out[n,i] = Table[words[n], i]
  kChildRead,    ///< out[n,i] = ph[child(n,k), i]
  kChildSum,     ///< out[n,i] = sum_k ph[child(n,k), i]
  kMatVec,       ///< out[n,i] = sum_j W[i,j] * in[n,j]
  kEltwise,      ///< out[n,i] = f(a[n,i], b[n,i], ...) pointwise
  kConstInit,    ///< out[n,i] = c (uniform base-case value)
};

struct Op;
using OpRef = std::shared_ptr<Op>;

/// One RA operator. `axes`/`extents` define its loop nest; by convention
/// per-node operators have first axis "n" with symbolic extent N (the node
/// count, unknown until runtime).
struct Op {
  OpTag tag = OpTag::kCompute;
  ComputePattern pattern = ComputePattern::kOpaque;
  std::string name;

  /// Loop axes of the operator's nest (e.g. {"n","i"}).
  std::vector<std::string> axes;
  /// Extent per axis; the node axis uses the symbolic var "N".
  std::vector<Expr> extents;
  /// Body: value stored at [axes...]. Null for inputs/placeholders.
  Expr body;

  /// Operands (producer ops referenced by body Loads, in load order).
  std::vector<OpRef> inputs;

  // kInput only: concrete tensor shape.
  std::vector<std::int64_t> input_shape;

  // kIfThenElse only: condition + branches.
  Expr cond;
  OpRef then_op;
  OpRef else_op;

  // kRecursion only.
  OpRef placeholder;
  OpRef recursion_body;

  /// True for tensors with a per-node leading axis.
  bool per_node() const;
  /// Trailing (non-node) extent product for per-node ops, e.g. H.
  std::int64_t inner_elems() const;
};

// -- constructors ------------------------------------------------------------

/// Declares a model weight / table of the given concrete shape.
OpRef input_tensor(std::string name, std::vector<std::int64_t> shape);

/// Declares the placeholder standing for results of recursive calls:
/// logically shaped (N, inner...).
OpRef placeholder(std::string name, std::vector<std::int64_t> inner_shape);

/// Generic operator: out[axes...] = body. Inputs are inferred from Loads.
OpRef compute(std::string name, std::vector<std::string> axes,
              std::vector<Expr> extents, Expr body,
              std::vector<OpRef> inputs);

/// out[n,i] = table[words[n], i].
OpRef embed_lookup(std::string name, OpRef table, std::int64_t width);

/// out[n,i] = ph[child(n,k), i] (k = 0 left, 1 right).
OpRef child_read(std::string name, OpRef ph, std::int64_t k,
                 std::int64_t width);

/// out[n,i] = ph[child(n,k), offset + i] — a slice of a child's state
/// (models whose state packs several tensors, e.g. TreeLSTM's [h; c]).
OpRef child_read_slice(std::string name, OpRef ph, std::int64_t k,
                       std::int64_t offset, std::int64_t width);

/// out[n,i] = sum over children c of ph[c, i] (child-sum models; handles
/// variable fan-in via the num_children uninterpreted function).
OpRef child_sum(std::string name, OpRef ph, std::int64_t width);

/// out[n,i] = sum_j W[i,j] * in[n,j]; W must be a kInput of shape (m, k).
OpRef matvec(std::string name, OpRef w, OpRef in);

/// out[n,i] = body(i-indexed loads of the given per-node operands).
/// `body` is built with load(op->name, {var("n"), var("i")}).
OpRef eltwise(std::string name, Expr body, std::vector<OpRef> inputs,
              std::int64_t width);

/// out[n,i] = c — uniform base-case initial value (hoisting target, §4.3).
OpRef const_init(std::string name, double value, std::int64_t width);

/// Conditional operator over the leaf check (§5.2).
OpRef if_then_else(std::string name, Expr cond, OpRef then_op, OpRef else_op);

/// Creates the recursion: placeholder `ph` is defined to be `body` at
/// every node (Listing 1 l.22).
OpRef recursion_op(OpRef ph, OpRef body);

/// Pretty-prints one operator as "name[axes] = body".
std::string to_string(const OpRef& op);

/// Appends a canonical structural encoding of the operator DAG rooted at
/// `op` (every field of every reachable operator, including if_then_else
/// branches and the recursion placeholder/body). Shared operators are
/// numbered in first-visit order, so operator *identity* is captured (two
/// reads of one placeholder encode differently from reads of two distinct
/// placeholders) while isomorphic DAGs built by separate factory calls
/// encode identically.
void fingerprint(const OpRef& op, support::FingerprintBuilder& fb);

}  // namespace cortex::ra
