#include "ra/expr.hpp"

#include <sstream>
#include <unordered_set>

namespace cortex::ra {

namespace {
Expr make(ExprNode n) { return std::make_shared<const ExprNode>(std::move(n)); }
}  // namespace

Expr fimm(double v) {
  ExprNode n{ExprKind::kFloatImm};
  n.dtype = DType::kFloat;
  n.fimm = v;
  return make(std::move(n));
}

Expr imm(std::int64_t v) {
  ExprNode n{ExprKind::kIntImm};
  n.dtype = DType::kInt;
  n.iimm = v;
  return make(std::move(n));
}

Expr var(std::string name, DType dtype) {
  ExprNode n{ExprKind::kVar};
  n.dtype = dtype;
  n.name = std::move(name);
  return make(std::move(n));
}

Expr binary(BinOp op, Expr a, Expr b) {
  CORTEX_CHECK(a && b) << "binary on null expr";
  ExprNode n{ExprKind::kBinary};
  n.dtype = (op == BinOp::kLt || op == BinOp::kGe || op == BinOp::kEq)
                ? DType::kInt
                : a->dtype;
  n.bin = op;
  n.args = {std::move(a), std::move(b)};
  return make(std::move(n));
}

Expr add(Expr a, Expr b) { return binary(BinOp::kAdd, std::move(a), std::move(b)); }
Expr sub(Expr a, Expr b) { return binary(BinOp::kSub, std::move(a), std::move(b)); }
Expr mul(Expr a, Expr b) { return binary(BinOp::kMul, std::move(a), std::move(b)); }
Expr div(Expr a, Expr b) { return binary(BinOp::kDiv, std::move(a), std::move(b)); }
Expr lt(Expr a, Expr b) { return binary(BinOp::kLt, std::move(a), std::move(b)); }
Expr ge(Expr a, Expr b) { return binary(BinOp::kGe, std::move(a), std::move(b)); }
Expr eq(Expr a, Expr b) { return binary(BinOp::kEq, std::move(a), std::move(b)); }

Expr call(CallFn fn, Expr a) {
  CORTEX_CHECK(a) << "call on null expr";
  ExprNode n{ExprKind::kCall};
  n.dtype = DType::kFloat;
  n.fn = fn;
  n.args = {std::move(a)};
  return make(std::move(n));
}

Expr load(std::string buffer, std::vector<Expr> indices) {
  CORTEX_CHECK(!buffer.empty()) << "load from unnamed buffer";
  ExprNode n{ExprKind::kLoad};
  n.dtype = DType::kFloat;
  n.name = std::move(buffer);
  n.args = std::move(indices);
  return make(std::move(n));
}

Expr sum(std::string axis, Expr extent, Expr body) {
  ExprNode n{ExprKind::kSum};
  n.dtype = DType::kFloat;
  n.name = std::move(axis);
  n.args = {std::move(extent), std::move(body)};
  return make(std::move(n));
}

Expr child(Expr node, std::int64_t k) {
  return child_at(std::move(node), imm(k));
}

Expr child_at(Expr node, Expr k) {
  ExprNode n{ExprKind::kChild};
  n.dtype = DType::kInt;
  n.args = {std::move(node), std::move(k)};
  return make(std::move(n));
}

Expr word_of(Expr node) {
  ExprNode n{ExprKind::kWordOf};
  n.dtype = DType::kInt;
  n.args = {std::move(node)};
  return make(std::move(n));
}

Expr num_children(Expr node) {
  ExprNode n{ExprKind::kNumChildren};
  n.dtype = DType::kInt;
  n.args = {std::move(node)};
  return make(std::move(n));
}

Expr is_leaf(Expr node) {
  ExprNode n{ExprKind::kIsLeaf};
  n.dtype = DType::kInt;
  n.args = {std::move(node)};
  return make(std::move(n));
}

Expr select(Expr cond, Expr then_e, Expr else_e) {
  ExprNode n{ExprKind::kSelect};
  n.dtype = then_e->dtype;
  n.args = {std::move(cond), std::move(then_e), std::move(else_e)};
  return make(std::move(n));
}

namespace {
const char* bin_name(BinOp b) {
  switch (b) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMax: return "max";
    case BinOp::kMin: return "min";
    case BinOp::kLt: return "<";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
  }
  return "?";
}
const char* fn_name(CallFn f) {
  switch (f) {
    case CallFn::kTanh: return "tanh";
    case CallFn::kSigmoid: return "sigmoid";
    case CallFn::kRelu: return "relu";
    case CallFn::kExp: return "exp";
  }
  return "?";
}
}  // namespace

std::string to_string(const Expr& e) {
  CORTEX_CHECK(e != nullptr) << "to_string(null)";
  std::ostringstream os;
  switch (e->kind) {
    case ExprKind::kFloatImm:
      os << e->fimm;
      break;
    case ExprKind::kIntImm:
      os << e->iimm;
      break;
    case ExprKind::kVar:
      os << e->name;
      break;
    case ExprKind::kBinary:
      if (e->bin == BinOp::kMax || e->bin == BinOp::kMin)
        os << bin_name(e->bin) << "(" << to_string(e->args[0]) << ", "
           << to_string(e->args[1]) << ")";
      else
        os << "(" << to_string(e->args[0]) << " " << bin_name(e->bin) << " "
           << to_string(e->args[1]) << ")";
      break;
    case ExprKind::kCall:
      os << fn_name(e->fn) << "(" << to_string(e->args[0]) << ")";
      break;
    case ExprKind::kLoad: {
      os << e->name << "[";
      for (std::size_t i = 0; i < e->args.size(); ++i) {
        if (i) os << ",";
        os << to_string(e->args[i]);
      }
      os << "]";
      break;
    }
    case ExprKind::kSum:
      os << "sum(" << e->name << ", 0:" << to_string(e->args[0]) << ", "
         << to_string(e->args[1]) << ")";
      break;
    case ExprKind::kChild: {
      const Expr& k = e->args[1];
      if (k->kind == ExprKind::kIntImm && k->iimm == 0)
        os << "left[" << to_string(e->args[0]) << "]";
      else if (k->kind == ExprKind::kIntImm && k->iimm == 1)
        os << "right[" << to_string(e->args[0]) << "]";
      else
        os << "child[" << to_string(e->args[0]) << "," << to_string(k)
           << "]";
      break;
    }
    case ExprKind::kWordOf:
      os << "words[" << to_string(e->args[0]) << "]";
      break;
    case ExprKind::kNumChildren:
      os << "num_children[" << to_string(e->args[0]) << "]";
      break;
    case ExprKind::kIsLeaf:
      os << "isleaf(" << to_string(e->args[0]) << ")";
      break;
    case ExprKind::kSelect:
      os << "select(" << to_string(e->args[0]) << ", "
         << to_string(e->args[1]) << ", " << to_string(e->args[2]) << ")";
      break;
  }
  return os.str();
}

bool struct_equal(const Expr& a, const Expr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind || a->dtype != b->dtype) return false;
  if (a->fimm != b->fimm || a->iimm != b->iimm || a->name != b->name ||
      a->bin != b->bin || a->fn != b->fn)
    return false;
  if (a->args.size() != b->args.size()) return false;
  for (std::size_t i = 0; i < a->args.size(); ++i)
    if (!struct_equal(a->args[i], b->args[i])) return false;
  return true;
}

void fingerprint(const Expr& e, support::FingerprintBuilder& fb) {
  if (!e) {
    fb.tag('0');
    return;
  }
  // Only the payload fields the kind actually uses are encoded — the
  // packed kind/dtype byte discriminates which follow, so the encoding
  // stays injective for factory-built expressions (factories
  // zero-initialize unused fields). This is the hot loop of plan-cache
  // key construction; keep it lean.
  fb.tag('E');
  fb.small(static_cast<std::uint8_t>((static_cast<int>(e->kind) << 1) |
                                     static_cast<int>(e->dtype)));
  switch (e->kind) {
    case ExprKind::kFloatImm:
      fb.add(e->fimm);
      break;
    case ExprKind::kIntImm:
      fb.add(e->iimm);
      break;
    case ExprKind::kVar:
    case ExprKind::kLoad:
    case ExprKind::kSum:
      fb.add_short(e->name);
      break;
    case ExprKind::kBinary:
      fb.small(static_cast<std::uint8_t>(e->bin));
      break;
    case ExprKind::kCall:
      fb.small(static_cast<std::uint8_t>(e->fn));
      break;
    default:
      break;  // structure accessors / select carry only args
  }
  fb.count(e->args.size());
  for (const Expr& a : e->args) fingerprint(a, fb);
}

Expr substitute(const Expr& e, const std::string& name,
                const Expr& replacement) {
  CORTEX_CHECK(e != nullptr) << "substitute(null)";
  if (e->kind == ExprKind::kVar && e->name == name) return replacement;
  // Reductions bind their own axis; do not substitute through shadowing.
  if (e->kind == ExprKind::kSum && e->name == name) return e;
  bool changed = false;
  std::vector<Expr> args;
  args.reserve(e->args.size());
  for (const Expr& a : e->args) {
    Expr s = substitute(a, name, replacement);
    changed = changed || (s != a);
    args.push_back(std::move(s));
  }
  if (!changed) return e;
  ExprNode n = *e;
  n.args = std::move(args);
  return std::make_shared<const ExprNode>(std::move(n));
}

namespace {
void collect_loads_rec(const Expr& e, std::vector<std::string>& out,
                       std::unordered_set<std::string>& seen) {
  if (e->kind == ExprKind::kLoad && seen.insert(e->name).second)
    out.push_back(e->name);
  for (const Expr& a : e->args) collect_loads_rec(a, out, seen);
}
}  // namespace

std::vector<std::string> collect_loads(const Expr& e) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  collect_loads_rec(e, out, seen);
  return out;
}

bool uses_var(const Expr& e, const std::string& name) {
  if (e->kind == ExprKind::kVar) return e->name == name;
  if (e->kind == ExprKind::kSum && e->name == name)
    return uses_var(e->args[0], name);  // body shadows; extent may still use
  for (const Expr& a : e->args)
    if (uses_var(a, name)) return true;
  return false;
}

bool has_structure_access(const Expr& e) {
  if (e->kind == ExprKind::kChild || e->kind == ExprKind::kWordOf ||
      e->kind == ExprKind::kIsLeaf || e->kind == ExprKind::kNumChildren)
    return true;
  for (const Expr& a : e->args)
    if (has_structure_access(a)) return true;
  return false;
}

}  // namespace cortex::ra
