#include "ra/model.hpp"

#include <unordered_set>

namespace cortex::ra {

namespace {
void topo_visit(const OpRef& op, std::unordered_set<const Op*>& seen,
                std::vector<OpRef>& out) {
  if (!op || !seen.insert(op.get()).second) return;
  for (const OpRef& in : op->inputs) topo_visit(in, seen, out);
  if (op->tag == OpTag::kIfThenElse) {
    topo_visit(op->then_op, seen, out);
    topo_visit(op->else_op, seen, out);
  }
  if (op->tag == OpTag::kRecursion) {
    topo_visit(op->placeholder, seen, out);
    topo_visit(op->recursion_body, seen, out);
  }
  out.push_back(op);
}
}  // namespace

std::vector<OpRef> Model::topo_ops() const {
  CORTEX_CHECK(recursion && recursion->tag == OpTag::kRecursion)
      << "model " << name << " has no recursion op";
  std::unordered_set<const Op*> seen;
  std::vector<OpRef> out;
  topo_visit(recursion, seen, out);
  return out;
}

std::vector<OpRef> Model::weight_ops() const {
  std::vector<OpRef> out;
  for (const OpRef& op : topo_ops())
    if (op->tag == OpTag::kInput) out.push_back(op);
  return out;
}

std::int64_t Model::weight_bytes() const {
  std::int64_t bytes = 0;
  for (const OpRef& w : weight_ops()) {
    std::int64_t n = 1;
    for (auto d : w->input_shape) n *= d;
    bytes += n * static_cast<std::int64_t>(sizeof(float));
  }
  return bytes;
}

void fingerprint(const Model& m, support::FingerprintBuilder& fb) {
  fb.tag('M');
  fb.add(m.name);
  fb.add(static_cast<std::int64_t>(m.kind));
  fb.add(m.max_children);
  fingerprint(m.recursion, fb);
}

Model make_model(std::string name, OpRef recursion,
                 linearizer::StructureKind kind, std::int64_t max_children) {
  CORTEX_CHECK(recursion && recursion->tag == OpTag::kRecursion)
      << "make_model: root must be a recursion_op";
  CORTEX_CHECK(max_children >= 1) << "max_children must be >= 1";
  Model m;
  m.name = std::move(name);
  m.recursion = std::move(recursion);
  m.kind = kind;
  m.max_children = max_children;
  return m;
}

}  // namespace cortex::ra
