#pragma once
// The RA model: an operator DAG rooted at a recursion_op, plus the basic
// data-structure information the user must declare (§3: structure kind and
// maximum children per node).

#include <cstdint>
#include <string>
#include <vector>

#include "linearizer/linearizer.hpp"
#include "ra/op.hpp"

namespace cortex::ra {

/// A complete recursive model expressed in the RA.
struct Model {
  std::string name;
  /// The recursion tying the placeholder to the body.
  OpRef recursion;
  /// Declared input structure.
  linearizer::StructureKind kind = linearizer::StructureKind::kTree;
  std::int64_t max_children = 2;
  /// Hidden/state width (trailing elements of the recursion output).
  std::int64_t state_width() const {
    return recursion->recursion_body->inner_elems();
  }

  /// All operators reachable from the recursion body, topologically sorted
  /// (producers before consumers); includes inputs and the placeholder,
  /// flattens if_then_else branches.
  std::vector<OpRef> topo_ops() const;

  /// All kInput weight tensors, in topo order.
  std::vector<OpRef> weight_ops() const;

  /// Total weight bytes (for the persistence capacity check).
  std::int64_t weight_bytes() const;
};

/// Convenience: builds a Model after basic validation.
Model make_model(std::string name, OpRef recursion,
                 linearizer::StructureKind kind,
                 std::int64_t max_children = 2);

/// Appends a canonical structural encoding of the model: name, structure
/// kind, max_children, and the full operator DAG (ra::fingerprint(OpRef)).
/// Structurally identical models built by separate factory calls encode
/// identically — the property the plan cache relies on.
void fingerprint(const Model& m, support::FingerprintBuilder& fb);

}  // namespace cortex::ra
