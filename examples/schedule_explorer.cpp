// Schedule explorer: sweeps Cortex's recursion-scheduling primitives and
// ILIR-level knobs on one model and prints the modeled latency of every
// legal combination — the manual analog of the auto-scheduling the paper
// leaves to future work (§6).
//
//   $ ./example_schedule_explorer [model] [hidden] [batch]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/common.hpp"
#include "ds/generators.hpp"
#include "exec/engine.hpp"
#include "exec/tuner.hpp"
#include "models/model_zoo.hpp"

using namespace cortex;

namespace {

models::ModelDef model_by_name(const std::string& name, std::int64_t h) {
  if (name == "TreeFC") return models::make_treefc(h);
  if (name == "TreeGRU") return models::make_treegru(h);
  if (name == "SimpleTreeGRU") return models::make_simple_treegru(h);
  if (name == "TreeLSTM") return models::make_treelstm(h);
  if (name == "TreeRNN") return models::make_treernn(h);
  if (name == "MV-RNN") return models::make_mvrnn(h);
  CORTEX_CHECK(false) << "unknown model " << name;
  return models::make_treefc(h);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "TreeGRU";
  const std::int64_t hidden = argc > 2 ? std::atoll(argv[2]) : 256;
  const std::int64_t batch = argc > 3 ? std::atoll(argv[3]) : 10;

  Rng rng(123);
  const models::ModelDef def = model_by_name(name, hidden);
  const models::ModelParams params = models::init_params(def, rng);
  auto trees = ds::make_sst_like_batch(batch, rng);
  const std::vector<const ds::Tree*> raw = baselines::raw(trees);

  std::printf("Schedule space for %s (hidden %lld, batch %lld, GPU "
              "model)\n\n",
              def.name.c_str(), static_cast<long long>(hidden),
              static_cast<long long>(batch));
  std::printf("%-56s %12s %10s %9s\n", "schedule", "latency(ms)", "#kernels",
              "barriers");

  double best = 1e30;
  std::string best_desc;
  for (const bool batching : {true, false}) {
    for (const bool specialize : {true, false}) {
      for (const auto fusion :
           {ra::FusionLevel::kMaximal, ra::FusionLevel::kNone}) {
        for (const bool persist : {true, false}) {
          for (const std::int64_t unroll : {1ll, 2ll}) {
            ra::Schedule s;
            s.dynamic_batching = batching;
            s.specialize_leaves = specialize;
            s.fusion = fusion;
            s.persistence = persist;
            s.unroll_depth = unroll;
            if (unroll > 1 && persist) continue;  // Appendix D
            exec::CortexEngine engine(def, params, s,
                                      runtime::DeviceSpec::v100_gpu());
            // Best of three runs: the modeled part is deterministic, the
            // measured linearization time is not.
            runtime::RunResult r = engine.run(raw);
            for (int rep = 0; rep < 2; ++rep) {
              runtime::RunResult r2 = engine.run(raw);
              if (r2.latency_ms() < r.latency_ms()) r = std::move(r2);
            }
            const std::string desc = ra::to_string(s);
            std::printf("%-56s %12.4f %10lld %9lld\n", desc.c_str(),
                        r.latency_ms(),
                        static_cast<long long>(r.profiler.kernel_launches),
                        static_cast<long long>(r.profiler.barriers));
            if (r.latency_ms() < best) {
              best = r.latency_ms();
              best_desc = desc;
            }
          }
        }
      }
    }
  }
  std::printf("\nBest schedule (manual sweep): %s  (%.4f ms)\n",
              best_desc.c_str(), best);

  // The grid-search auto-tuner (§6) explores the same space — plus
  // deeper unrolling and refactoring — over the deterministic device
  // model, excluding the schedule-independent linearization time.
  const linearizer::Linearized lin = linearizer::linearize_trees(
      raw, linearizer::LinearizerSpec{});
  const exec::TuneResult tuned = exec::autotune(
      def, params, lin, runtime::DeviceSpec::v100_gpu());
  std::printf("Auto-tuner:                   %s\n",
              tuned.summary().c_str());
  return 0;
}
