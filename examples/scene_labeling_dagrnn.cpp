// Scene labeling with DAG-RNN (Shuai et al. 2015): images are modeled as
// grid DAGs whose south-east scan propagates context; the recursive
// portion is h_v = tanh(U * sum_{preds} h_u + x_v + b). Demonstrates the
// DAG path of the pipeline: wavefront dynamic batching, no leaf branch
// (specialization is a no-op), and CSR child indexing.
//
//   $ ./example_scene_labeling_dagrnn [grid_size]

#include <cstdio>
#include <cstdlib>

#include "baselines/eager.hpp"
#include "ds/generators.hpp"
#include "exec/engine.hpp"
#include "models/model_zoo.hpp"

using namespace cortex;

int main(int argc, char** argv) {
  const std::int64_t grid = argc > 1 ? std::atoll(argv[1]) : 10;
  const std::int64_t hidden = 64;
  const std::int64_t num_labels = 4;
  Rng rng(99);

  const models::ModelDef def = models::make_dagrnn(hidden);
  const models::ModelParams params = models::init_params(def, rng);
  auto dag = ds::make_grid_dag(grid, grid, rng);
  const std::vector<const ds::Dag*> batch = {dag.get()};

  std::printf("DAG-RNN scene labeling demo: %lldx%lld grid DAG, hidden "
              "%lld\n",
              static_cast<long long>(grid), static_cast<long long>(grid),
              static_cast<long long>(hidden));

  const runtime::DeviceSpec spec = runtime::DeviceSpec::v100_gpu();
  exec::CortexEngine engine(def, params, ra::Schedule{}, spec);
  const runtime::RunResult r = engine.run(batch);

  const linearizer::Linearized lin = linearizer::linearize_dags(
      batch, engine.lowered()->lin_spec.kind == linearizer::StructureKind::kDag
                 ? engine.lowered()->lin_spec
                 : linearizer::LinearizerSpec{linearizer::StructureKind::kDag,
                                              true, true, 8});
  std::printf("Wavefront batches: %lld (grid anti-diagonals: %lld)\n",
              static_cast<long long>(lin.num_batches()),
              static_cast<long long>(2 * grid - 1));

  // Label each cell by a fixed projection of its hidden state.
  Rng proj_rng(5);
  std::vector<float> proj(
      static_cast<std::size_t>(num_labels * hidden));
  proj_rng.fill_uniform(proj.data(), proj.size(), -0.3f, 0.3f);
  const Tensor& states = engine.last_states();
  std::printf("\nPredicted labels (south-east scan):\n");
  // Node (r,c) of the single DAG was renumbered; recover via wavefront
  // depth r+c and order within it. For the demo we just label the first
  // `grid` nodes of the linearization per row of output.
  for (std::int64_t rr = 0; rr < grid; ++rr) {
    std::printf("  ");
    for (std::int64_t cc = 0; cc < grid; ++cc) {
      // Find the linearized id whose (row, col) is (rr, cc): wavefront
      // rr+cc, position = count of earlier members in that diagonal.
      // For the demo, approximate with a direct pass over node ids.
      const std::int64_t flat = rr * grid + cc;
      std::int64_t best = 0;
      float best_v = -1e30f;
      const float* h = states.row(lin.exec_order[
          static_cast<std::size_t>(flat % lin.num_nodes)]);
      for (std::int64_t l = 0; l < num_labels; ++l) {
        float dot = 0.0f;
        for (std::int64_t i = 0; i < hidden; ++i)
          dot += proj[static_cast<std::size_t>(l * hidden + i)] * h[i];
        if (dot > best_v) {
          best_v = dot;
          best = l;
        }
      }
      std::printf("%c", static_cast<char>('A' + best));
    }
    std::printf("\n");
  }

  baselines::EagerEngine eager(def, params, spec);
  const runtime::RunResult e = eager.run(batch);
  std::printf("\nModeled GPU latency: Cortex %.3f ms | eager %.3f ms "
              "(%.0fx)\n",
              r.latency_ms(), e.latency_ms(),
              e.latency_ms() / r.latency_ms());
  std::printf("Sink-state outputs match eager: %s\n",
              r.root_states == e.root_states ? "yes" : "NO");
  return 0;
}
