// Sentiment analysis with a child-sum TreeLSTM over (synthetic) Stanford
// Sentiment Treebank parse trees — the workload motivating the paper's
// introduction. Uses the embedding-leaf TreeLSTM variant, compares
// Cortex against the eager and DyNet-like baselines, and projects each
// root state to a scalar "sentiment score" with a fixed read-out vector.
//
//   $ ./example_sentiment_treelstm [batch_size]

#include <cstdio>
#include <cstdlib>

#include "baselines/dynet_like.hpp"
#include "baselines/eager.hpp"
#include "ds/generators.hpp"
#include "exec/engine.hpp"
#include "models/model_zoo.hpp"
#include "tensor/activations.hpp"

using namespace cortex;

int main(int argc, char** argv) {
  const std::int64_t batch = argc > 1 ? std::atoll(argv[1]) : 10;
  const std::int64_t hidden = 128;
  Rng rng(20240611);

  const models::ModelDef def = models::make_treelstm_embed(hidden);
  const models::ModelParams params = models::init_params(def, rng);
  auto trees = ds::make_sst_like_batch(batch, rng);
  const std::vector<const ds::Tree*> raw = baselines::raw(trees);

  std::printf("Child-sum TreeLSTM sentiment demo: %lld SST-like sentences, "
              "hidden %lld\n\n",
              static_cast<long long>(batch), static_cast<long long>(hidden));
  for (std::size_t t = 0; t < raw.size() && t < 5; ++t) {
    const ds::TreeStats st = ds::tree_stats(*raw[t]);
    std::printf("  sentence %zu: %lld tokens, parse height %lld\n", t,
                static_cast<long long>(st.leaves),
                static_cast<long long>(st.height));
  }

  const runtime::DeviceSpec spec = runtime::DeviceSpec::v100_gpu();
  exec::CortexEngine cortex_engine(def, params, ra::Schedule{}, spec);
  baselines::EagerEngine eager(def, params, spec);
  baselines::DynetEngine dynet(def, params, spec);

  const runtime::RunResult rc = cortex_engine.run(raw);
  const runtime::RunResult re = eager.run(raw);
  const runtime::RunResult rd = dynet.run(raw);

  // Fixed random read-out: score = <w, h_root>, squashed to [-1, 1].
  Rng ro_rng(7);
  std::vector<float> readout(static_cast<std::size_t>(hidden));
  ro_rng.fill_uniform(readout.data(), readout.size(), -0.3f, 0.3f);
  std::printf("\nSentiment scores (Cortex root states):\n");
  for (std::size_t t = 0; t < rc.root_states.size() && t < 5; ++t) {
    float dot = 0.0f;
    for (std::size_t i = 0; i < readout.size(); ++i)
      dot += readout[i] * rc.root_states[t][i];  // h part of [h;c]
    const float score = kernels::tanh_rational(dot);
    std::printf("  sentence %zu: %+.3f  (%s)\n", t, score,
                score > 0.05f   ? "positive"
                : score < -0.05f ? "negative"
                                 : "neutral");
  }

  std::printf("\nModeled GPU latency:  Cortex %.3f ms | eager %.3f ms "
              "(%.0fx) | DyNet-like %.3f ms (%.1fx)\n",
              rc.latency_ms(), re.latency_ms(),
              re.latency_ms() / rc.latency_ms(), rd.latency_ms(),
              rd.latency_ms() / rc.latency_ms());
  std::printf("Cross-framework outputs identical: %s\n",
              (rc.root_states == re.root_states &&
               rc.root_states == rd.root_states)
                  ? "yes"
                  : "NO");
  return 0;
}
