// Quickstart: the paper's Fig. 1 running example end to end.
//
// Builds the parse tree for "It is a dog .", expresses the treeRNN model
// in the Recursive API, lowers it (dynamic batching + leaf
// specialization, Listing 2), prints the generated ILIR and C++ target
// code, and runs inference on the Cortex engine and the PyTorch-like
// eager baseline.
//
//   $ ./example_quickstart

#include <cstdio>

#include "baselines/eager.hpp"
#include "ds/tree.hpp"
#include "exec/engine.hpp"
#include "ilir/codegen_c.hpp"
#include "models/model_zoo.hpp"

using namespace cortex;

int main() {
  // -- 1. the input structure: the parse tree of "It is a dog." --------------
  // ((It (is (a dog))) .) with word ids 0..4.
  ds::Tree tree;
  ds::TreeNode* it_ = tree.make_leaf(0);
  ds::TreeNode* is_ = tree.make_leaf(1);
  ds::TreeNode* a_ = tree.make_leaf(2);
  ds::TreeNode* dog = tree.make_leaf(3);
  ds::TreeNode* dot = tree.make_leaf(4);
  ds::TreeNode* np = tree.make_internal(a_, dog);
  ds::TreeNode* vp = tree.make_internal(is_, np);
  ds::TreeNode* s = tree.make_internal(it_, vp);
  tree.set_root(tree.make_internal(s, dot));

  // -- 2. the model in the Recursive API (Listing 1) --------------------------
  const std::int64_t hidden = 8;  // small so the printouts stay readable
  const models::ModelDef def = models::make_treernn_fig1(hidden);
  std::printf("Model: %s  (h = tanh(h_left + h_right); leaves are "
              "embeddings)\n\n", def.name.c_str());
  std::printf("RA operators:\n");
  for (const ra::OpRef& op : def.model->topo_ops())
    std::printf("  %s\n", ra::to_string(op).c_str());

  // -- 3. compile: schedule + lowering to ILIR (Listing 2) --------------------
  ra::Schedule schedule;  // dynamic_batch(rnn); specialize(isleaf(n))
  Rng rng(2024);
  const models::ModelParams params = models::init_params(def, rng);
  exec::CortexEngine engine(def, params, schedule,
                            runtime::DeviceSpec::v100_gpu());
  std::printf("\nSchedule: %s\nPlan: %s\n\n",
              ra::to_string(schedule).c_str(),
              engine.plan().describe().c_str());
  std::printf("Generated ILIR:\n%s\n",
              ilir::to_string(engine.lowered()->program).c_str());
  std::printf("Generated C++ target code:\n%s\n",
              ilir::codegen_c(engine.lowered()->program).c_str());

  // -- 4. run -------------------------------------------------------------------
  std::vector<const ds::Tree*> batch = {&tree};
  const runtime::RunResult r = engine.run(batch);
  std::printf("Root state (first %lld elems):", static_cast<long long>(
                                                    hidden));
  for (float v : r.root_states.front()) std::printf(" %+.4f", v);
  std::printf("\nModeled GPU inference latency: %.1f us "
              "(%lld kernel launch, %lld barriers)\n",
              r.latency_ms() * 1e3,
              static_cast<long long>(r.profiler.kernel_launches),
              static_cast<long long>(r.profiler.barriers));

  baselines::EagerEngine eager(def, params, runtime::DeviceSpec::v100_gpu());
  const runtime::RunResult e = eager.run(batch);
  std::printf("PyTorch-like eager latency:    %.1f us "
              "(%lld kernel launches)\n",
              e.latency_ms() * 1e3,
              static_cast<long long>(e.profiler.kernel_launches));
  std::printf("Outputs match: %s\n",
              r.root_states == e.root_states ? "yes" : "NO");
  return 0;
}
